"""repro.api — the unified session API of the submatrix engine.

One configuration (:class:`EngineConfig`), one kernel registry
(:class:`MatrixFunction` et al., shared with :mod:`repro.signfn.registry`)
and one session object (:class:`SubmatrixContext`) that owns the plan
cache, the persistent executor and the sharded pipelines:

>>> from repro.api import EngineConfig, SubmatrixContext
>>> ctx = SubmatrixContext(EngineConfig(engine="batched", backend="thread"))
>>> f_a = ctx.apply(matrix, "eigen", mu=0.2)                 # doctest: +SKIP
>>> dft = ctx.density(K, S, blocks, n_electrons=256.0)       # doctest: +SKIP
>>> run = ctx.distributed(8).run(block_matrix, "eigen")      # doctest: +SKIP
>>> md = ctx.trajectory(step_pairs, blocks, mu=-0.2)         # doctest: +SKIP

The legacy entry points (:class:`~repro.core.method.SubmatrixMethod`,
:class:`~repro.core.sign_dft.SubmatrixDFTSolver`,
:class:`~repro.core.runner.DistributedSubmatrixPipeline`) are facades over
this layer and produce bitwise-identical results.
"""

from repro.api.config import (
    BACKENDS,
    BALANCE_STRATEGIES,
    EIGENSOLVE_FLOP_CONSTANT,
    ENGINES,
    EngineConfig,
    PRECISION_POLICY_MODES,
    PrecisionPolicy,
    ResiliencePolicy,
)
from repro.api.checkpoint import CheckpointError, TrajectoryCheckpoint
from repro.api.results import (
    DecomposedSubmatrix,
    EnergyWeightedDensityResult,
    ObservableBundle,
    PDOSResult,
    SubmatrixDFTResult,
    SubmatrixMethodResult,
)
from repro.api.context import (
    REPLAN_MODES,
    DistributedSession,
    SubmatrixContext,
)
from repro.api.observables import (
    Observable,
    SharedEvaluation,
    UnknownObservableError,
    available_observables,
    compute_observables,
    get_observable,
    normalize_observables,
    register_observable,
)
from repro.api.scf import SCFResult, run_scf
from repro.api.trajectory import (
    TrajectoryResult,
    TrajectoryStats,
    TrajectoryStepRecord,
    run_trajectory,
)
from repro.signfn.registry import (
    BoundKernel,
    KernelConvergenceError,
    MatrixFunction,
    SIGN_SOLVERS,
    UnknownKernelError,
    available_kernels,
    get_kernel,
    register_callable,
    register_kernel,
    resolve_kernel,
)

__all__ = [
    "EngineConfig",
    "ENGINES",
    "BACKENDS",
    "BALANCE_STRATEGIES",
    "EIGENSOLVE_FLOP_CONSTANT",
    "ResiliencePolicy",
    "PrecisionPolicy",
    "PRECISION_POLICY_MODES",
    "TrajectoryCheckpoint",
    "CheckpointError",
    "KernelConvergenceError",
    "SubmatrixContext",
    "DistributedSession",
    "REPLAN_MODES",
    "TrajectoryResult",
    "TrajectoryStats",
    "TrajectoryStepRecord",
    "run_trajectory",
    "SubmatrixMethodResult",
    "SubmatrixDFTResult",
    "DecomposedSubmatrix",
    "ObservableBundle",
    "PDOSResult",
    "EnergyWeightedDensityResult",
    "Observable",
    "SharedEvaluation",
    "UnknownObservableError",
    "available_observables",
    "compute_observables",
    "get_observable",
    "normalize_observables",
    "register_observable",
    "SCFResult",
    "run_scf",
    "MatrixFunction",
    "BoundKernel",
    "UnknownKernelError",
    "SIGN_SOLVERS",
    "register_kernel",
    "register_callable",
    "get_kernel",
    "available_kernels",
    "resolve_kernel",
]
