"""Result types of the unified session API.

These dataclasses were born in :mod:`repro.core.method` and
:mod:`repro.core.sign_dft`; they live here so the session layer
(:mod:`repro.api.context`, :mod:`repro.api.density`) and the legacy facades
can share them without import cycles.  The facades re-export them under
their historical names, so ``from repro.core import SubmatrixMethodResult``
keeps working.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, List, Optional, Union

import numpy as np
import scipy.sparse as sp

if TYPE_CHECKING:  # avoid a runtime cycle: core.method imports this module
    from repro.core.submatrix import Submatrix
    from repro.dbcsr.block_matrix import BlockSparseMatrix

__all__ = [
    "SubmatrixMethodResult",
    "SubmatrixDFTResult",
    "DecomposedSubmatrix",
]


@dataclasses.dataclass
class SubmatrixMethodResult:
    """Result of an approximate matrix-function evaluation.

    Attributes
    ----------
    result:
        The approximate f(A) with the sparsity pattern of A (CSR matrix for
        element-level evaluation, :class:`BlockSparseMatrix` for block-level).
    submatrix_dimensions:
        Dense dimension of every submatrix that was solved.
    wall_time:
        Wall-clock seconds spent (extraction + evaluation + scatter).
    flop_estimate:
        Σ c·n_i³ estimate of the evaluation cost with c = 1 (callers rescale
        with their solver's constant); this is the cost model used for load
        balancing and for the combination heuristic (Eq. 14).
    """

    result: Union[sp.csr_matrix, BlockSparseMatrix]
    submatrix_dimensions: List[int]
    wall_time: float
    flop_estimate: float

    @property
    def n_submatrices(self) -> int:
        return len(self.submatrix_dimensions)

    @property
    def max_dimension(self) -> int:
        return max(self.submatrix_dimensions) if self.submatrix_dimensions else 0


@dataclasses.dataclass
class SubmatrixDFTResult:
    """Result of a submatrix-method density-matrix calculation.

    Attributes
    ----------
    density_ao:
        Density matrix in the original (non-orthogonal) AO basis, Eq. 16.
    density_ortho:
        Density matrix in the Löwdin-orthogonalized basis (sparse, with the
        sparsity pattern of the filtered orthogonalized Kohn–Sham matrix).
    mu:
        Chemical potential used (fixed for grand-canonical, bisected for
        canonical calculations).
    n_electrons:
        Electron count of the computed density matrix (Eq. 18, times the
        spin degeneracy).
    band_energy:
        Band-structure energy Tr(D K) (Eq. 10, times the spin degeneracy).
    submatrix_dimensions:
        Dense dimensions of all solved submatrices.
    mu_iterations:
        Bisection iterations spent adjusting μ (0 for grand-canonical runs).
    eps_filter:
        Filter threshold applied to the orthogonalized Kohn–Sham matrix.
    wall_time:
        Wall-clock seconds for the full computation.
    n_ranks:
        Simulated rank count the eigendecomposition cache was sharded over
        (1 for single-process runs).
    pattern_fingerprint:
        Content hash of the (filtered, orthogonalized) block-sparsity
        pattern the calculation planned against — the same hash that keys
        the plan cache, so trajectory drivers can detect pattern changes
        between steps without rehashing.
    segment_fetch_bytes:
        Deduplicated packed-segment volume of the sharded pipeline's
        initialization exchange (``None`` for single-process runs or when
        segment volumes were not planned).
    block_fetch_bytes:
        Whole-block volume of the same exchange (``None`` for
        single-process runs).
    retries:
        Total recovery retries the resilience layer performed — rank tasks
        re-executed after a failure plus iterative sign solves restarted
        with an escalated budget (0 for clean or policy-less runs; see
        :class:`~repro.api.config.ResiliencePolicy`).
    reassigned_stacks:
        Bucketed stack tasks of failed ranks' shards that were reassigned
        to surviving ranks during retry rounds.
    kernel_fallbacks:
        Submatrices whose iterative sign solve failed convergence even
        after the retries and was evaluated by the policy's fallback
        kernel instead.
    degraded:
        Whether the computation fell back to the single-process batched
        engine after exhausting the rank retries (the result is still
        bitwise identical to a fault-free run).
    overlap_seconds:
        Modeled exchange time hidden behind compute by the arrival-driven
        engine (0.0 for synchronous or single-process runs; see
        ``EngineConfig.overlap``).
    exchange_hidden_fraction:
        Fraction of the modeled initialization exchange that the overlap
        hid (``None`` when the run did not execute arrival-driven).
    stacks_reduced:
        Bucketed stacks whose iterative sign solve ran in a reduced
        precision mode under the session's
        :class:`~repro.api.config.PrecisionPolicy` (0 for the default FP64
        policy or non-participating kernels).
    refinement_passes:
        FP64 Newton–Schulz refinement passes that polished a reduced sign
        estimate back to target accuracy.
    precision_error_bound:
        Max over the reduced stacks of the a-priori density error bound
        ``ε_mode · κ_estimate`` (``None`` when nothing ran reduced).
    """

    density_ao: np.ndarray
    density_ortho: sp.csr_matrix
    mu: float
    n_electrons: float
    band_energy: float
    submatrix_dimensions: List[int]
    mu_iterations: int
    eps_filter: float
    wall_time: float
    n_ranks: int = 1
    pattern_fingerprint: Optional[str] = None
    segment_fetch_bytes: Optional[float] = None
    block_fetch_bytes: Optional[float] = None
    retries: int = 0
    reassigned_stacks: int = 0
    kernel_fallbacks: int = 0
    degraded: bool = False
    overlap_seconds: float = 0.0
    exchange_hidden_fraction: Optional[float] = None
    stacks_reduced: int = 0
    refinement_passes: int = 0
    precision_error_bound: Optional[float] = None

    @property
    def n_submatrices(self) -> int:
        return len(self.submatrix_dimensions)

    @property
    def max_submatrix_dimension(self) -> int:
        return max(self.submatrix_dimensions) if self.submatrix_dimensions else 0


@dataclasses.dataclass
class DecomposedSubmatrix:
    """Cached eigendecomposition of one submatrix (input to Algorithm 1)."""

    submatrix: Submatrix
    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    generating_function_rows: np.ndarray  # local dense rows of the generating columns
    # Σ_rows Q²[generating rows, :] — the electron count at chemical potential
    # μ is just weights · f(λ − μ), so the whole bisection works on two flat
    # vectors instead of re-slicing the eigenvectors every iteration
    generating_weights: Optional[np.ndarray] = None

    def weights(self) -> np.ndarray:
        if self.generating_weights is None:
            q_rows = self.eigenvectors[self.generating_function_rows, :]
            self.generating_weights = np.sum(q_rows**2, axis=0)
        return self.generating_weights
