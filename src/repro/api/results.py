"""Result types of the unified session API.

These dataclasses were born in :mod:`repro.core.method` and
:mod:`repro.core.sign_dft`; they live here so the session layer
(:mod:`repro.api.context`, :mod:`repro.api.density`) and the legacy facades
can share them without import cycles.  The facades re-export them under
their historical names, so ``from repro.core import SubmatrixMethodResult``
keeps working.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

if TYPE_CHECKING:  # avoid a runtime cycle: core.method imports this module
    from repro.core.submatrix import Submatrix
    from repro.dbcsr.block_matrix import BlockSparseMatrix

__all__ = [
    "SubmatrixMethodResult",
    "SubmatrixDFTResult",
    "DecomposedSubmatrix",
    "PDOSResult",
    "EnergyWeightedDensityResult",
    "ObservableBundle",
]


@dataclasses.dataclass
class SubmatrixMethodResult:
    """Result of an approximate matrix-function evaluation.

    Attributes
    ----------
    result:
        The approximate f(A) with the sparsity pattern of A (CSR matrix for
        element-level evaluation, :class:`BlockSparseMatrix` for block-level).
    submatrix_dimensions:
        Dense dimension of every submatrix that was solved.
    wall_time:
        Wall-clock seconds spent (extraction + evaluation + scatter).
    flop_estimate:
        Σ c·n_i³ estimate of the evaluation cost with c = 1 (callers rescale
        with their solver's constant); this is the cost model used for load
        balancing and for the combination heuristic (Eq. 14).
    """

    result: Union[sp.csr_matrix, BlockSparseMatrix]
    submatrix_dimensions: List[int]
    wall_time: float
    flop_estimate: float

    @property
    def n_submatrices(self) -> int:
        return len(self.submatrix_dimensions)

    @property
    def max_dimension(self) -> int:
        return max(self.submatrix_dimensions) if self.submatrix_dimensions else 0


@dataclasses.dataclass
class SubmatrixDFTResult:
    """Result of a submatrix-method density-matrix calculation.

    Attributes
    ----------
    density_ao:
        Density matrix in the original (non-orthogonal) AO basis, Eq. 16.
    density_ortho:
        Density matrix in the Löwdin-orthogonalized basis (sparse, with the
        sparsity pattern of the filtered orthogonalized Kohn–Sham matrix).
    mu:
        Chemical potential used (fixed for grand-canonical, bisected for
        canonical calculations).
    n_electrons:
        Electron count of the computed density matrix (Eq. 18, times the
        spin degeneracy).
    band_energy:
        Band-structure energy Tr(D K) (Eq. 10, times the spin degeneracy).
    submatrix_dimensions:
        Dense dimensions of all solved submatrices.
    mu_iterations:
        Bisection iterations spent adjusting μ (0 for grand-canonical runs).
    eps_filter:
        Filter threshold applied to the orthogonalized Kohn–Sham matrix.
    wall_time:
        Wall-clock seconds for the full computation.
    n_ranks:
        Simulated rank count the eigendecomposition cache was sharded over
        (1 for single-process runs).
    pattern_fingerprint:
        Content hash of the (filtered, orthogonalized) block-sparsity
        pattern the calculation planned against — the same hash that keys
        the plan cache, so trajectory drivers can detect pattern changes
        between steps without rehashing.
    segment_fetch_bytes:
        Deduplicated packed-segment volume of the sharded pipeline's
        initialization exchange (``None`` for single-process runs or when
        segment volumes were not planned).
    block_fetch_bytes:
        Whole-block volume of the same exchange (``None`` for
        single-process runs).
    retries:
        Total recovery retries the resilience layer performed — rank tasks
        re-executed after a failure plus iterative sign solves restarted
        with an escalated budget (0 for clean or policy-less runs; see
        :class:`~repro.api.config.ResiliencePolicy`).
    reassigned_stacks:
        Bucketed stack tasks of failed ranks' shards that were reassigned
        to surviving ranks during retry rounds.
    kernel_fallbacks:
        Submatrices whose iterative sign solve failed convergence even
        after the retries and was evaluated by the policy's fallback
        kernel instead.
    degraded:
        Whether the computation fell back to the single-process batched
        engine after exhausting the rank retries (the result is still
        bitwise identical to a fault-free run).
    overlap_seconds:
        Modeled exchange time hidden behind compute by the arrival-driven
        engine (0.0 for synchronous or single-process runs; see
        ``EngineConfig.overlap``).
    exchange_hidden_fraction:
        Fraction of the modeled initialization exchange that the overlap
        hid (``None`` when the run did not execute arrival-driven).
    stacks_reduced:
        Bucketed stacks whose iterative sign solve ran in a reduced
        precision mode under the session's
        :class:`~repro.api.config.PrecisionPolicy` (0 for the default FP64
        policy or non-participating kernels).
    refinement_passes:
        FP64 Newton–Schulz refinement passes that polished a reduced sign
        estimate back to target accuracy.
    precision_error_bound:
        Max over the reduced stacks of the a-priori density error bound
        ``ε_mode · κ_estimate`` (``None`` when nothing ran reduced).
    """

    density_ao: np.ndarray
    density_ortho: sp.csr_matrix
    mu: float
    n_electrons: float
    band_energy: float
    submatrix_dimensions: List[int]
    mu_iterations: int
    eps_filter: float
    wall_time: float
    n_ranks: int = 1
    pattern_fingerprint: Optional[str] = None
    segment_fetch_bytes: Optional[float] = None
    block_fetch_bytes: Optional[float] = None
    retries: int = 0
    reassigned_stacks: int = 0
    kernel_fallbacks: int = 0
    degraded: bool = False
    overlap_seconds: float = 0.0
    exchange_hidden_fraction: Optional[float] = None
    stacks_reduced: int = 0
    refinement_passes: int = 0
    precision_error_bound: Optional[float] = None

    @property
    def n_submatrices(self) -> int:
        return len(self.submatrix_dimensions)

    @property
    def max_submatrix_dimension(self) -> int:
        return max(self.submatrix_dimensions) if self.submatrix_dimensions else 0


@dataclasses.dataclass
class PDOSResult:
    """Projected / total density of states from the cached decompositions.

    The submatrix method's electron-count machinery (Eq. 18) already carries
    a spectral measure: every decomposed submatrix contributes its
    eigenvalues with generating-row weights ``Σ_rows Q²``.  Broadening that
    measure with Gaussians of width ``broadening`` yields the density of
    states; keeping the per-column-group contributions separate yields the
    projected DOS.

    Attributes
    ----------
    energies:
        Uniform energy grid the DOS was sampled on.
    dos:
        Total broadened density of states on ``energies`` (states per unit
        energy, including the spin degeneracy).
    projections:
        ``(n_groups, n_points)`` per-column-group projected DOS; rows sum to
        ``dos``.
    eigenvalues:
        Concatenated submatrix eigenvalues (the raw spectral nodes).
    weights:
        Matching concatenated generating weights (spin degeneracy *not*
        applied; ``Σ weights`` ≈ number of orbitals).
    mu:
        Chemical potential of the run (for occupation integrals).
    broadening:
        Gaussian σ used.
    n_electrons:
        ``spin_degeneracy · Σ weights · f(λ − μ)`` — identical (up to
        summation order) to the density result's electron count.
    """

    energies: np.ndarray
    dos: np.ndarray
    projections: np.ndarray
    eigenvalues: np.ndarray
    weights: np.ndarray
    mu: float
    broadening: float
    n_electrons: float

    @property
    def n_points(self) -> int:
        return int(self.energies.size)

    @property
    def n_groups(self) -> int:
        return int(self.projections.shape[0])

    def integrated_states(self) -> float:
        """∫ dos dE via the trapezoid rule (≈ spin_degeneracy · n_orbitals)."""
        return float(np.trapezoid(self.dos, self.energies))

    def payload_nbytes(self) -> int:
        return int(
            self.energies.nbytes
            + self.dos.nbytes
            + self.projections.nbytes
            + self.eigenvalues.nbytes
            + self.weights.nbytes
        )


@dataclasses.dataclass
class EnergyWeightedDensityResult:
    """Energy-weighted density matrix W = Q (λ·f(λ−μ)) Qᵀ and band energy.

    Shares the eigendecomposition pass of the density observable: instead of
    scattering occupations ``f(λ−μ)`` per submatrix, it scatters
    ``λ·f(λ−μ)``.  The trace of the orthogonal-basis result times the spin
    degeneracy is the band-structure energy computed *spectrally* —
    a cross-check of the density path's ``Tr(D K)`` (Eq. 10).

    Attributes
    ----------
    energy_weighted_ao:
        Energy-weighted density matrix in the AO basis
        (``S^{-1/2} W S^{-1/2}``), the quantity entering Pulay-force
        contractions with ``dS/dR``.
    energy_weighted_ortho:
        Sparse orthogonal-basis energy-weighted density matrix with the
        pattern of the filtered orthogonalized Kohn–Sham matrix.
    band_energy:
        ``spin_degeneracy · Tr(W)`` — spectral band-structure energy.
    mu:
        Chemical potential used.
    """

    energy_weighted_ao: np.ndarray
    energy_weighted_ortho: sp.csr_matrix
    band_energy: float
    mu: float

    def payload_nbytes(self) -> int:
        return int(
            self.energy_weighted_ao.nbytes + self.energy_weighted_ortho.data.nbytes
        )


@dataclasses.dataclass
class ObservableBundle:
    """Results of one multi-observable evaluation sharing a decomposition.

    Maps observable name → result.  Attribute access falls through to the
    density result when one is present, so a bundle quacks like a
    :class:`SubmatrixDFTResult` everywhere the trajectory/serving layers
    only need density fields (``mu``, ``band_energy``, ``density_ao``, …).
    """

    results: Dict[str, Any]
    observables: Tuple[str, ...]
    stack_decompositions: int = 0

    @property
    def density(self) -> Optional[SubmatrixDFTResult]:
        return self.results.get("density")

    def __getitem__(self, name: str) -> Any:
        return self.results[name]

    def __contains__(self, name: str) -> bool:
        return name in self.results

    def keys(self):
        return self.results.keys()

    def __getattr__(self, name: str) -> Any:
        # dataclass fields and methods resolve normally; anything else is
        # delegated to the density result so bundle-producing paths stay
        # drop-in where a plain density result used to flow
        results = self.__dict__.get("results")
        if results is not None:
            density = results.get("density")
            if density is not None:
                try:
                    return getattr(density, name)
                except AttributeError:
                    pass
        raise AttributeError(
            f"{type(self).__name__!s} has no attribute {name!r}"
        )

    def payload_nbytes(self) -> int:
        total = 0
        for result in self.results.values():
            if isinstance(result, SubmatrixDFTResult):
                total += int(result.density_ao.nbytes)
                total += int(result.density_ortho.data.nbytes)
            elif hasattr(result, "payload_nbytes"):
                total += int(result.payload_nbytes())
        return total


@dataclasses.dataclass
class DecomposedSubmatrix:
    """Cached eigendecomposition of one submatrix (input to Algorithm 1)."""

    submatrix: Submatrix
    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    generating_function_rows: np.ndarray  # local dense rows of the generating columns
    # Σ_rows Q²[generating rows, :] — the electron count at chemical potential
    # μ is just weights · f(λ − μ), so the whole bisection works on two flat
    # vectors instead of re-slicing the eigenvectors every iteration
    generating_weights: Optional[np.ndarray] = None

    def weights(self) -> np.ndarray:
        if self.generating_weights is None:
            q_rows = self.eigenvectors[self.generating_function_rows, :]
            self.generating_weights = np.sum(q_rows**2, axis=0)
        return self.generating_weights
