"""Density-matrix construction via the submatrix sign method (Sec. IV-F/G).

This is the paper's application of the submatrix method: computing the
one-particle reduced density matrix from the Kohn–Sham and overlap matrices,

    D = 1/2 · S^{-1/2} (I − sign(S^{-1/2} K S^{-1/2} − μ I)) S^{-1/2}   (Eq. 16)

by evaluating the sign function with one dense eigendecomposition per
submatrix (Eq. 17), with the extension sign(0) = 0 (Eq. 12) and, at finite
temperature, the Fermi function instead of the Heaviside step.

Both ensembles of the paper are supported:

* **grand canonical** — the chemical potential μ is fixed and the electron
  count follows from it;
* **canonical** — the electron count is fixed and μ is adjusted by bisection.
  Because every submatrix is eigendecomposed anyway, the bisection can reuse
  the cached eigendecompositions and only has to re-apply the (shifted)
  signum to the eigenvalues (Algorithm 1 of the paper) — no sign function or
  eigendecomposition is recomputed during the search.

This module is the implementation behind :meth:`SubmatrixContext.density`;
:class:`repro.core.sign_dft.SubmatrixDFTSolver` is a thin facade over it.
New in the session API: with ``ranks > 1`` the eigendecomposition cache is
built **rank-sharded** through the
:class:`~repro.core.runner.DistributedSubmatrixPipeline` — each simulated
rank extracts and eigendecomposes only its own shard (from its rank-local
packed buffer), and the μ-bisection runs on the shard-assembled global
eigenvalue/weight vectors.  Because the per-submatrix decompositions are
slice-deterministic and the cache is reassembled in global group order, the
sharded canonical-ensemble search is bitwise identical to the
single-process solver for any rank count.

The grand-canonical **iterative** solvers (Newton–Schulz, Padé, and any
registered iterative sign kernel) run rank-sharded through the same
pipeline (:meth:`~repro.core.runner.DistributedSubmatrixPipeline.run_stacks`):
they are genuine matrix functions, so the registry's pad-value metadata
applies unchanged, and because the batched iterations freeze and prescale
each matrix individually the per-submatrix iterates do not depend on the
stack composition — the sharded occupation matrices are bitwise identical
to the single-process solver for any rank count.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.api.results import DecomposedSubmatrix, SubmatrixDFTResult
from repro.backend.mixed import PrecisionReport, solve_reduced_sign
from repro.chem.density import band_structure_energy, electron_count, fermi_occupation
from repro.core.batch import MAX_BATCH_ELEMENTS, make_stack_tasks
from repro.core.combination import ColumnGrouping, single_column_groups
from repro.core.load_balance import resolve_bucket_pad
from repro.core.plan import BlockSubmatrixPlan
from repro.core.submatrix import (
    Submatrix,
    extract_block_submatrix,
    scatter_block_submatrix_result,
)
from repro.chem.orthogonalize import orthogonalized_ks
from repro.core.runner import PipelineExecutionError, ResilienceReport
from repro.parallel.machine import PAPER_MACHINE
from repro.dbcsr.block_matrix import BlockSparseMatrix
from repro.dbcsr.convert import block_matrix_from_csr, block_matrix_to_csr
from repro.dbcsr.coo import CooBlockList
from repro.signfn.registry import get_kernel, resilient_stack_solver

__all__ = ["compute_density", "assemble_result", "prepare_step", "PreparedStep"]


@dataclasses.dataclass
class PreparedStep:
    """Context-free preparation of one density calculation's inputs.

    Everything here is a pure function of ``(K, S, block_sizes,
    eps_filter)`` — orthogonalization, block conversion, the COO pattern
    and its fingerprint — so it can be computed ahead of time on another
    thread (the trajectory driver's step prefetch) without touching the
    session's plan cache or pipelines.  :func:`compute_density` accepts it
    via ``prepared=`` and skips the preparation work after verifying the
    filter threshold and block sizes still match.
    """

    k_ortho: sp.csr_matrix
    s_inv_sqrt: np.ndarray
    block_k: BlockSparseMatrix
    coo: CooBlockList
    eps_filter: float
    block_sizes: Tuple[int, ...]

    def matches(self, blocks, eps_filter: float) -> bool:
        return (
            float(self.eps_filter) == float(eps_filter)
            and self.block_sizes == tuple(int(b) for b in blocks.block_sizes)
        )


def prepare_step(K, S, blocks, eps_filter: float) -> PreparedStep:
    """Precompute the pure preparation of one step (see :class:`PreparedStep`)."""
    k_ortho, s_inv_sqrt = orthogonalized_ks(K, S, eps_filter=eps_filter)
    block_k = block_matrix_from_csr(k_ortho, blocks.block_sizes, threshold=0.0)
    coo = CooBlockList.from_block_matrix(block_k)
    return PreparedStep(
        k_ortho=k_ortho,
        s_inv_sqrt=s_inv_sqrt,
        block_k=block_k,
        coo=coo,
        eps_filter=float(eps_filter),
        block_sizes=tuple(int(b) for b in blocks.block_sizes),
    )


def compute_density(
    context,
    K,
    S,
    blocks,
    mu: Optional[float] = None,
    n_electrons: Optional[float] = None,
    solver: str = "eigen",
    grouping: Optional[ColumnGrouping] = None,
    mu_tolerance: float = 1e-9,
    max_mu_iterations: int = 200,
    ranks: Optional[int] = None,
    distribution=None,
    replan: str = "full",
    mu_bracket: Optional[Tuple[float, float]] = None,
    prepared: Optional[PreparedStep] = None,
) -> SubmatrixDFTResult:
    """Compute the density matrix for a given K, S and ensemble.

    Exactly one of ``mu`` (grand-canonical) and ``n_electrons`` (canonical)
    must be provided.  ``context`` supplies the engine configuration, plan
    cache and persistent executor; ``ranks`` overrides
    ``context.config.n_ranks`` for the sharded eigendecomposition cache and
    ``distribution`` fixes the block ownership of its transfer plan.

    ``replan`` controls how a sparsity pattern unseen by the session is
    planned: ``"full"`` (default) builds extraction plans and pipelines from
    scratch, ``"patch"``/``"auto"`` incrementally patch the session's most
    recent plan/pipeline of the same configuration (see
    :meth:`SubmatrixContext.block_plan_for`) — results are bitwise identical
    in every mode.  ``mu_bracket`` optionally seeds the canonical ensemble's
    μ-bisection with a warm ``(lo, hi)`` bracket (expanded automatically if
    it does not bracket the electron count); a warm bracket changes the
    bisection's iterate sequence, so the resulting μ is not bitwise
    reproducible against a cold start — both converge the electron count
    to within ``mu_tolerance``, but at T = 0 the μ values may settle at
    different points of a degenerate gap plateau.  ``prepared``
    optionally supplies a :class:`PreparedStep` computed ahead of time
    (the trajectory driver's prefetch); it is used only when its filter
    threshold and block sizes match the session's, so a stale prefetch
    silently falls back to in-place preparation.
    """
    config = context.config
    start = time.perf_counter()
    policy = config.resilience if config.resilience.active else None
    report = ResilienceReport() if policy is not None else None
    precision = config.precision if config.precision.active else None
    precision_report = PrecisionReport() if precision is not None else None
    if (mu is None) == (n_electrons is None):
        raise ValueError("specify exactly one of mu and n_electrons")
    canonical = n_electrons is not None
    # the single (registry-backed) solver-string validation path; kernels
    # with supports_mu_bisection run through the eigendecomposition cache
    # (Algorithm 1), everything else through the iterative sign path
    kernel = get_kernel(solver)
    eigen_cache = kernel.supports_mu_bisection
    if canonical and not eigen_cache:
        raise ValueError(
            "canonical-ensemble calculations require the eigendecomposition "
            "solver (Algorithm 1 reuses the cached eigendecompositions)"
        )
    explicit_ranks = ranks is not None
    ranks = config.n_ranks if ranks is None else int(ranks)
    if ranks < 1:
        raise ValueError("ranks must be positive")
    engine = config.engine
    if ranks > 1 and engine == "naive":
        raise ValueError(
            "rank-sharded density calculations require the plan engine "
            "(engine='plan' or 'batched')"
        )

    if prepared is not None and prepared.matches(blocks, config.eps_filter):
        # the trajectory driver prepared this step's pure pieces on a
        # background thread while the previous step was still computing
        k_ortho, s_inv_sqrt = prepared.k_ortho, prepared.s_inv_sqrt
        block_k, coo = prepared.block_k, prepared.coo
    else:
        k_ortho, s_inv_sqrt = orthogonalized_ks(
            K, S, eps_filter=config.eps_filter
        )
        block_k = block_matrix_from_csr(
            k_ortho, blocks.block_sizes, threshold=0.0
        )
        coo = CooBlockList.from_block_matrix(block_k)
    grouping = grouping or single_column_groups(block_k.n_block_cols)
    grouping.validate(block_k.n_block_cols)

    # an explicitly requested rank count exercises the sharded path even at
    # ranks == 1 (a single shard of everything), so the bitwise-identity
    # guarantee covers the sharding machinery itself
    use_sharded = engine != "naive" and (
        ranks > 1 or (explicit_ranks and ranks == 1)
    )
    pipeline = None
    if use_sharded:
        pipeline = context.pipeline(
            coo,
            block_k.row_block_sizes,
            n_ranks=ranks,
            grouping=grouping,
            distribution=distribution,
            replan=replan,
            # Algorithm 1 needs exact-dimension buckets (see
            # _decompose_planned); the iterative kernels pad safely
            **({"bucket_pad": None} if eigen_cache else {}),
        )
    if eigen_cache:
        if engine == "naive":
            decomposed, plan = _decompose_naive(context, block_k, grouping, coo)
        elif use_sharded:
            try:
                decomposed, plan = _decompose_sharded(
                    context, block_k, pipeline, policy, report
                )
            except PipelineExecutionError:
                if policy is None or not policy.degrade_to_batched:
                    raise
                # graceful degradation: rebuild the cache with the
                # single-process planned path — the per-submatrix
                # eigendecompositions are slice-deterministic, so the
                # recovered cache (and everything downstream) is bitwise
                # identical to the sharded run
                assert report is not None
                report.degraded = True
                decomposed, plan = _decompose_planned(
                    context, block_k, grouping, coo, replan
                )
        else:
            decomposed, plan = _decompose_planned(
                context, block_k, grouping, coo, replan
            )
        mu_iterations = 0
        if canonical:
            mu, mu_iterations = _bisect_mu(
                config,
                decomposed,
                float(n_electrons),
                mu_tolerance,
                max_mu_iterations,
                bracket=mu_bracket,
            )
        assert mu is not None
        occupation_block = _scatter_occupations(
            config, block_k, decomposed, coo, float(mu), plan
        )
        dimensions = [d.submatrix.dimension for d in decomposed]
    else:
        occupation_block, dimensions = _iterative_occupations(
            context,
            block_k,
            grouping,
            coo,
            float(mu),
            kernel,
            pipeline,
            replan,
            policy=policy,
            report=report,
            precision=precision,
            precision_report=precision_report,
        )
        mu_iterations = 0

    return assemble_result(
        config,
        K,
        s_inv_sqrt,
        occupation_block,
        coo,
        float(mu),
        mu_iterations,
        dimensions,
        wall_time=time.perf_counter() - start,
        ranks=ranks,
        pipeline=pipeline,
        report=report,
        precision_report=precision_report,
    )


def assemble_result(
    config,
    K,
    s_inv_sqrt: np.ndarray,
    occupation_block: BlockSparseMatrix,
    coo: CooBlockList,
    mu: float,
    mu_iterations: int,
    dimensions: List[int],
    wall_time: float,
    ranks: int = 1,
    pipeline=None,
    report=None,
    precision_report=None,
) -> SubmatrixDFTResult:
    """Finalize a density calculation from its scattered occupation matrix.

    The tail shared by :func:`compute_density` and the serving layer's
    cross-request batcher (:mod:`repro.serve.batcher`): convert the packed
    occupation blocks to CSR, back-transform to the AO basis, evaluate the
    band-structure energy and electron count, and collect the transfer /
    overlap accounting of an optional sharded ``pipeline``.  Using one tail
    for both callers is part of the served-equals-direct bitwise contract.
    """
    density_ortho = block_matrix_to_csr(occupation_block)
    density_ao = s_inv_sqrt @ density_ortho.toarray() @ s_inv_sqrt
    k_dense = K.toarray() if sp.issparse(K) else np.asarray(K, dtype=float)
    energy = band_structure_energy(density_ao, k_dense, config.spin_degeneracy)
    n_elec = electron_count(density_ortho, config.spin_degeneracy)
    segment_fetch_bytes = None
    block_fetch_bytes = None
    overlap_seconds = 0.0
    exchange_hidden_fraction = None
    if pipeline is not None:
        transfer = pipeline.transfer_plan
        block_fetch_bytes = float(transfer.total_fetch_bytes)
        if transfer.has_segments:
            segment_fetch_bytes = float(transfer.total_segment_fetch_bytes)
        if pipeline.last_overlap is not None:
            overlap_seconds = float(pipeline.last_overlap.overlap_seconds)
            exchange_hidden_fraction = float(
                pipeline.last_overlap.exchange_hidden_fraction
            )
    return SubmatrixDFTResult(
        density_ao=density_ao,
        density_ortho=density_ortho,
        mu=float(mu),
        n_electrons=n_elec,
        band_energy=energy,
        submatrix_dimensions=dimensions,
        mu_iterations=mu_iterations,
        eps_filter=config.eps_filter,
        wall_time=wall_time,
        n_ranks=ranks,
        pattern_fingerprint=coo.fingerprint(),
        segment_fetch_bytes=segment_fetch_bytes,
        block_fetch_bytes=block_fetch_bytes,
        retries=report.retries if report is not None else 0,
        reassigned_stacks=report.reassigned_stacks if report is not None else 0,
        kernel_fallbacks=report.kernel_fallbacks if report is not None else 0,
        degraded=report.degraded if report is not None else False,
        overlap_seconds=overlap_seconds,
        exchange_hidden_fraction=exchange_hidden_fraction,
        stacks_reduced=(
            precision_report.stacks_reduced if precision_report is not None else 0
        ),
        refinement_passes=(
            precision_report.refinement_passes
            if precision_report is not None
            else 0
        ),
        precision_error_bound=(
            precision_report.error_bound
            if precision_report is not None and precision_report.stacks_reduced
            else None
        ),
    )


# --------------------------------------------------------------------------- #
# eigendecomposition cache (grand-canonical and canonical)
# --------------------------------------------------------------------------- #
def _make_entry(
    submatrix: Submatrix, eigenvalues: np.ndarray, eigenvectors: np.ndarray
) -> DecomposedSubmatrix:
    offsets = np.concatenate(([0], np.cumsum(submatrix.block_sizes)))
    generating_rows: List[np.ndarray] = []
    for local_column in submatrix.local_columns:
        generating_rows.append(
            np.arange(offsets[local_column], offsets[local_column + 1])
        )
    return DecomposedSubmatrix(
        submatrix=submatrix,
        eigenvalues=eigenvalues,
        eigenvectors=eigenvectors,
        generating_function_rows=np.concatenate(generating_rows),
    )


def _decompose_naive(
    context, block_k: BlockSparseMatrix, grouping: ColumnGrouping, coo: CooBlockList
) -> Tuple[List[DecomposedSubmatrix], Optional[BlockSubmatrixPlan]]:
    """Reference path: per-group extraction and one eigh call per submatrix."""

    def decompose(group: Sequence[int]) -> DecomposedSubmatrix:
        submatrix = extract_block_submatrix(block_k, group, coo)
        eigenvalues, eigenvectors = np.linalg.eigh(submatrix.data)
        return _make_entry(submatrix, eigenvalues, eigenvectors)

    return context._map(decompose, list(grouping.groups)), None


def _decompose_planned(
    context,
    block_k: BlockSparseMatrix,
    grouping: ColumnGrouping,
    coo: CooBlockList,
    replan: str = "full",
) -> Tuple[List[DecomposedSubmatrix], BlockSubmatrixPlan]:
    """Extract and eigendecompose every submatrix (Eq. 17, first step).

    Extraction runs through the cached vectorized plan and the
    eigendecompositions are evaluated one bucket (stack of equal-dimension
    submatrices) at a time.  Buckets stay exact-dimension: Algorithm 1
    reuses the cached per-submatrix eigendecompositions during the
    μ-bisection, and a padded block-diagonal embedding has a different
    spectrum bookkeeping.
    """
    groups = list(grouping.groups)
    plan = context.block_plan_for(
        coo, block_k.row_block_sizes, groups, replan=replan
    )
    packed = plan.pack(block_k)
    buckets = make_stack_tasks(plan.dimensions)

    def decompose_bucket(bucket):
        stack = plan.extract_stack(packed, bucket.members, bucket.dimension)
        eigenvalues, eigenvectors = np.linalg.eigh(stack)
        return [
            _make_entry(
                plan.groups[group_index].make_submatrix(),
                eigenvalues[slot],
                eigenvectors[slot],
            )
            for slot, group_index in enumerate(bucket.members)
        ]

    per_bucket = context._map(decompose_bucket, buckets)
    entries: List[Optional[DecomposedSubmatrix]] = [None] * len(groups)
    for bucket, bucket_entries in zip(buckets, per_bucket):
        for group_index, entry in zip(bucket.members, bucket_entries):
            entries[group_index] = entry
    return entries, plan  # type: ignore[return-value]


def _decompose_sharded(
    context, block_k: BlockSparseMatrix, pipeline, policy=None, report=None
) -> Tuple[List[DecomposedSubmatrix], BlockSubmatrixPlan]:
    """Build the eigendecomposition cache rank-sharded through the pipeline.

    The context-cached :class:`~repro.core.runner.DistributedSubmatrixPipeline`
    fixes the submatrix→rank assignment (``config.balance``), the sharded
    extraction plan and the packed-segment transfer plan; each rank then
    gathers its local buffer and eigendecomposes its shard bucket by bucket
    — the same per-rank execution :meth:`run` uses, with the decomposition
    kept instead of an evaluated matrix function.  Entries are reassembled
    in global group order, so the subsequent μ-bisection and scatter are
    bitwise identical to the single-process path.

    With an active ``policy`` the rank tasks run through
    :meth:`~repro.core.runner.DistributedSubmatrixPipeline.execute_ranks`
    (retry/rebalance on injected or genuine rank failures — the rank
    closures are idempotent, so a re-execution rebuilds exactly the same
    cache entries); a persistent failure raises
    :class:`~repro.core.runner.PipelineExecutionError` for
    :func:`compute_density`'s degradation logic.

    With ``config.overlap`` the rank closures run arrival-driven through
    an :class:`~repro.core.overlap.OverlappedExchange` engine — each
    bucket is eigendecomposed the moment its segment chunks land instead
    of after the rank's full gather — and the modeled hidden-exchange
    accounting is published on ``pipeline.last_overlap``.  The per-bucket
    arithmetic (extract → ``eigh`` → collect) is unchanged, so the cache
    is bitwise identical either way.
    """
    plan, sharded = pipeline.prepare()
    packed = plan.pack(block_k)
    pipeline.last_overlap = None
    engine = None
    overlap_reports: List[Optional[object]] = [None] * pipeline.n_ranks
    if context.config.overlap:
        engine = pipeline.overlap_engine(
            PAPER_MACHINE,
            pad_to=None,
            max_batch_elements=MAX_BATCH_ELEMENTS,
            fault_injector=policy.fault_injector if policy is not None else None,
        )

    def decompose_rank(rank: int) -> List[Tuple[int, DecomposedSubmatrix]]:
        shard = sharded.shards[rank]
        if shard.n_groups == 0:
            return []
        entries: List[Tuple[int, DecomposedSubmatrix]] = []

        def collect(bucket, stack):
            eigenvalues, eigenvectors = np.linalg.eigh(stack)
            for slot, local_index in enumerate(bucket.members):
                group_index = int(shard.group_indices[local_index])
                entries.append(
                    (
                        group_index,
                        _make_entry(
                            plan.groups[group_index].make_submatrix(),
                            eigenvalues[slot],
                            eigenvectors[slot],
                        ),
                    )
                )

        if engine is not None:
            overlap_reports[rank] = engine.run_rank(rank, packed, collect)
            return entries
        local = shard.pack_local(packed)
        for bucket in shard.stack_tasks():
            stack = shard.view.extract_stack(local, bucket.members, bucket.dimension)
            collect(bucket, stack)
        return entries

    backend, executor = context._rank_resources()
    per_rank = pipeline.execute_ranks(
        decompose_rank,
        context.config.max_workers,
        backend,
        executor=executor,
        policy=policy,
        report=report,
    )
    if engine is not None:
        pipeline.last_overlap = engine.report(overlap_reports)
    entries: List[Optional[DecomposedSubmatrix]] = [None] * plan.n_groups
    for rank_entries in per_rank:
        for group_index, entry in rank_entries:
            entries[group_index] = entry
    return entries, plan  # type: ignore[return-value]


def _occupations(config, eigenvalues: np.ndarray, mu: float) -> np.ndarray:
    """Occupation numbers f(λ − μ) (Heaviside with f=1/2 at μ, or Fermi)."""
    return fermi_occupation(eigenvalues, mu, config.temperature)


def _bisect_mu(
    config,
    decomposed: Sequence[DecomposedSubmatrix],
    n_electrons: float,
    tolerance: float,
    max_iterations: int,
    bracket: Optional[Tuple[float, float]] = None,
) -> Tuple[float, int]:
    """Adjust μ by bisection on the cached eigendecompositions (Alg. 1).

    Implements Algorithm 1: only the rows of Q that correspond to the
    generating block columns contribute (only those columns enter the
    sparse result), and the contribution of one submatrix reduces to
    ``weights · f(λ − μ)``.  The eigenvalues and weights of all
    submatrices are concatenated once, so every bisection step is a
    single vectorized occupation evaluation plus a dot product.

    ``bracket`` optionally warm-starts the search (SCF/MD trajectories seed
    it from the previous step's μ): the bracket is clipped to the spectrum
    bounds and expanded geometrically — each expansion's electron-count
    evaluation billed as an iteration — until it encloses the target
    electron count, so convergence never depends on the seed's quality.
    Warm starts change the iterate sequence and therefore the exact
    floating-point μ; without a bracket the iterates are identical to the
    cold-start search.
    """
    all_eigenvalues = np.concatenate([d.eigenvalues for d in decomposed])
    all_weights = np.concatenate([d.weights() for d in decomposed])
    full_lo = float(all_eigenvalues.min()) - 1.0
    full_hi = float(all_eigenvalues.max()) + 1.0

    def electron_count_at(mu: float) -> float:
        occupations = _occupations(config, all_eigenvalues, mu)
        return config.spin_degeneracy * float(np.dot(all_weights, occupations))

    lo, hi = full_lo, full_hi
    iterations = 0
    if bracket is not None:
        warm_lo = max(float(bracket[0]), full_lo)
        warm_hi = min(float(bracket[1]), full_hi)
        if warm_lo < warm_hi:
            width = warm_hi - warm_lo
            # expand until count(lo) ≤ N ≤ count(hi) (occupation is
            # nondecreasing in μ), falling back to the spectrum bounds
            while warm_lo > full_lo and electron_count_at(warm_lo) > n_electrons:
                iterations += 1
                warm_lo = max(full_lo, warm_lo - width)
                width *= 2.0
            while warm_hi < full_hi and electron_count_at(warm_hi) < n_electrons:
                iterations += 1
                warm_hi = min(full_hi, warm_hi + width)
                width *= 2.0
            lo, hi = warm_lo, warm_hi
    mu = 0.5 * (lo + hi)
    while iterations < max_iterations:
        iterations += 1
        mu = 0.5 * (lo + hi)
        error = electron_count_at(mu) - n_electrons
        if abs(error) <= tolerance:
            break
        if error < 0:
            lo = mu
        else:
            hi = mu
    return mu, iterations


def _scatter_occupations(
    config,
    block_k: BlockSparseMatrix,
    decomposed: Sequence[DecomposedSubmatrix],
    coo: CooBlockList,
    mu: float,
    plan: Optional[BlockSubmatrixPlan] = None,
) -> BlockSparseMatrix:
    """Form f(a − μ) per submatrix and scatter the generating columns.

    With a plan, the scatter is one vectorized write per submatrix into a
    preallocated packed output buffer and the result blocks are zero-copy
    views into that buffer.
    """
    if plan is not None:
        out = plan.new_output()
        for group_index, entry in enumerate(decomposed):
            occupations = _occupations(config, entry.eigenvalues, mu)
            occupation_matrix = (
                entry.eigenvectors * occupations
            ) @ entry.eigenvectors.T
            plan.scatter(out, group_index, occupation_matrix)
        return plan.finalize(out)
    result = BlockSparseMatrix(block_k.row_block_sizes, block_k.col_block_sizes)
    for entry in decomposed:
        occupations = _occupations(config, entry.eigenvalues, mu)
        occupation_matrix = (
            entry.eigenvectors * occupations
        ) @ entry.eigenvectors.T
        scatter_block_submatrix_result(result, occupation_matrix, entry.submatrix, coo)
    return result


# --------------------------------------------------------------------------- #
# iterative path (grand-canonical only, used for the solver ablation)
# --------------------------------------------------------------------------- #
def _occupation_stack_solver(
    kernel,
    bound,
    mu: float,
    policy=None,
    report=None,
    precision=None,
    precision_report=None,
):
    """Per-stack occupation solver 1/2·(I − sign(A − μI)) for ``kernel``.

    Both the single-process bucket loop and the rank-sharded pipeline map
    this same closure over their ``(k, d, d)`` stacks, so the two paths
    perform identical per-submatrix arithmetic — and because the batched
    sign iterations prescale and freeze each matrix individually, the
    results are independent of the stack composition (the basis of the
    sharded path's bitwise-identity guarantee).

    With an active ``policy`` and a kernel that provides a
    convergence-checked batched variant, the sign evaluation runs through
    :func:`~repro.signfn.registry.resilient_stack_solver`: non-converged
    submatrices are restarted with an escalated iteration budget and
    ultimately handed to the policy's fallback kernel — recorded on the
    ``report``, not raised.  A retried matrix restarts from its original
    shifted values, so a recovered solve is bitwise identical to a
    fault-free converged one.

    With an active ``precision`` policy and a kernel that declares
    ``supports_reduced_precision``, a reduced-precision sign solve with an
    FP64 refinement pass (:func:`~repro.backend.mixed.solve_reduced_sign`)
    is attempted *first*; whenever it declines or fails (mode gate,
    non-finite reduced estimate, refinement non-convergence) the stack
    silently falls through to the ordinary FP64 chain below — including
    its resilience ladder.
    """
    resilient = resilient_stack_solver(kernel, policy, report)

    def solve(stack: np.ndarray) -> np.ndarray:
        identity = np.eye(stack.shape[-1])
        shifted = stack - mu * identity
        if precision is not None:
            signs = solve_reduced_sign(kernel, shifted, precision, precision_report)
            if signs is not None:
                return 0.5 * (identity - signs)
        if resilient is not None:
            signs = np.asarray(resilient(shifted), dtype=float)
        elif bound.batch_function is not None:
            signs = np.asarray(bound.batch_function(shifted), dtype=float)
        else:
            signs = np.stack(
                [
                    np.asarray(bound.function(shifted[slot]), dtype=float)
                    for slot in range(shifted.shape[0])
                ]
            )
        if signs.shape != shifted.shape:
            raise ValueError(
                f"sign kernel {kernel.name!r} returned shape {signs.shape}, "
                f"expected {shifted.shape}"
            )
        return 0.5 * (identity - signs)

    return solve


def _iterative_occupations(
    context,
    block_k: BlockSparseMatrix,
    grouping: ColumnGrouping,
    coo: CooBlockList,
    mu: float,
    kernel,
    pipeline=None,
    replan: str = "full",
    policy=None,
    report=None,
    precision=None,
    precision_report=None,
) -> Tuple[BlockSparseMatrix, List[int]]:
    """Occupation matrices 1/2·(I − sign(A − μI)) via an iterative sign kernel.

    ``kernel`` is any registered :class:`~repro.signfn.registry.MatrixFunction`
    without an eigendecomposition cache — the built-in Newton–Schulz and
    Padé iterations, or a user-registered sign kernel.  The μ-shift is
    applied here, so parameterless kernels work unchanged; the kernel is
    bound without parameters and receives the shifted submatrices.

    With the plan engine, extraction and scatter run through the cached plan
    and the kernel's batched variant (when it has one) iterates whole
    equal-or-padded-dimension buckets at once.  Bucket padding embeds a
    small submatrix block-diagonally with the kernel's
    :meth:`~repro.signfn.registry.MatrixFunction.padding_value` (``1 + μ``
    for the built-in sign iterations) on the padding diagonal, so after the
    μ-shift the padding eigenvalues sit at exactly 1 (well inside the sign
    iteration's convergence region) and the padded rows never reach the
    scatter.

    With a ``pipeline``, each simulated rank gathers its rank-local packed
    buffer and runs the same per-stack solver over its shard's buckets
    (:meth:`~repro.core.runner.DistributedSubmatrixPipeline.run_stacks`),
    scattering into the shared output — bitwise identical to the
    single-process path for any rank count.
    """
    config = context.config
    bound = kernel.bind()
    groups = list(grouping.groups)
    if config.engine == "naive":

        def solve(group: Sequence[int]):
            submatrix = extract_block_submatrix(block_k, group, coo)
            shifted = submatrix.data - mu * np.eye(submatrix.dimension)
            sign = np.asarray(bound.function(shifted), dtype=float)
            occupation = 0.5 * (np.eye(submatrix.dimension) - sign)
            return submatrix, occupation

        solved = context._map(solve, groups)
        result = BlockSparseMatrix(block_k.row_block_sizes, block_k.col_block_sizes)
        dimensions = []
        for submatrix, occupation in solved:
            dimensions.append(submatrix.dimension)
            scatter_block_submatrix_result(result, occupation, submatrix, coo)
        return result, dimensions

    solve_stack = _occupation_stack_solver(
        kernel, bound, mu, policy, report, precision, precision_report
    )
    pad_value = kernel.padding_value(mu)

    if pipeline is not None:
        # rank-sharded: the pipeline owns the plan, the shard layouts and
        # the transfer plan (all cached on the context across calls)
        if pipeline.bucket_pad is not None and not kernel.matrix_function:
            raise ValueError(
                f"kernel {kernel.name!r} is not a genuine matrix function; "
                "bucket padding requires exact-dimension buckets "
                "(bucket_pad=None)"
            )
        plan, _ = pipeline.prepare()
        packed = plan.pack(block_k)
        out = plan.new_output()
        backend, executor = context._rank_resources()
        pipeline.run_stacks(
            packed,
            solve_stack,
            out,
            pad_value=pad_value,
            max_workers=config.max_workers,
            backend=backend,
            executor=executor,
            policy=policy,
            report=report,
            overlap=config.overlap,
        )
        return plan.finalize(out), list(plan.dimensions)

    plan = context.block_plan_for(
        coo, block_k.row_block_sizes, groups, replan=replan
    )
    packed = plan.pack(block_k)
    dimensions = plan.dimensions
    pad = resolve_bucket_pad(config.bucket_pad, dimensions)
    if pad is not None and not kernel.matrix_function:
        raise ValueError(
            f"kernel {kernel.name!r} is not a genuine matrix function; "
            "bucket padding requires exact-dimension buckets (bucket_pad=None)"
        )
    buckets = make_stack_tasks(dimensions, pad_to=pad)

    def solve_bucket(bucket):
        stack = plan.extract_stack(
            packed, bucket.members, bucket.dimension, pad_value=pad_value
        )
        return solve_stack(stack)

    per_bucket = context._map(solve_bucket, buckets)
    out = plan.new_output()
    for bucket, occupations in zip(buckets, per_bucket):
        plan.scatter_stack(out, bucket.members, occupations, bucket.dimension)
    return plan.finalize(out), list(dimensions)
