"""Density-matrix construction via the submatrix sign method (Sec. IV-F/G).

This is the paper's application of the submatrix method: computing the
one-particle reduced density matrix from the Kohn–Sham and overlap matrices,

    D = 1/2 · S^{-1/2} (I − sign(S^{-1/2} K S^{-1/2} − μ I)) S^{-1/2}   (Eq. 16)

by evaluating the sign function with one dense eigendecomposition per
submatrix (Eq. 17), with the extension sign(0) = 0 (Eq. 12) and, at finite
temperature, the Fermi function instead of the Heaviside step.

Both ensembles of the paper are supported:

* **grand canonical** — the chemical potential μ is fixed and the electron
  count follows from it;
* **canonical** — the electron count is fixed and μ is adjusted by bisection.
  Because every submatrix is eigendecomposed anyway, the bisection can reuse
  the cached eigendecompositions and only has to re-apply the (shifted)
  signum to the eigenvalues (Algorithm 1 of the paper) — no sign function or
  eigendecomposition is recomputed during the search.

Since the observable-generic refactor, the execution skeleton lives in
:mod:`repro.api.observables` and the density matrix is one registered
:class:`~repro.api.observables.Observable`.  :func:`compute_density` is the
historical entry point — a thin wrapper requesting the ``density``
observable alone, bitwise identical to the pre-refactor implementation on
every path (batched, sharded ranks, overlap, trajectory+checkpoint,
served).  The shared helpers (``prepare_step``, ``assemble_result``, the
decomposition/bisection/scatter internals the serving layer's batcher
reuses) are re-exported here so existing imports keep working.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.api.observables import (  # noqa: F401  (re-exports, see docstring)
    PreparedStep,
    _bisect_mu,
    _decompose_naive,
    _decompose_planned,
    _decompose_sharded,
    _iterative_occupations,
    _make_entry,
    _occupation_stack_solver,
    _occupations,
    _scatter_occupations,
    assemble_result,
    compute_observables,
    prepare_step,
)
from repro.api.results import SubmatrixDFTResult
from repro.core.combination import ColumnGrouping

__all__ = ["compute_density", "assemble_result", "prepare_step", "PreparedStep"]


def compute_density(
    context,
    K,
    S,
    blocks,
    mu: Optional[float] = None,
    n_electrons: Optional[float] = None,
    solver: str = "eigen",
    grouping: Optional[ColumnGrouping] = None,
    mu_tolerance: float = 1e-9,
    max_mu_iterations: int = 200,
    ranks: Optional[int] = None,
    distribution=None,
    replan: str = "full",
    mu_bracket: Optional[Tuple[float, float]] = None,
    prepared: Optional[PreparedStep] = None,
) -> SubmatrixDFTResult:
    """Compute the density matrix for a given K, S and ensemble.

    Exactly one of ``mu`` (grand-canonical) and ``n_electrons`` (canonical)
    must be provided.  ``context`` supplies the engine configuration, plan
    cache and persistent executor; ``ranks`` overrides
    ``context.config.n_ranks`` for the sharded eigendecomposition cache and
    ``distribution`` fixes the block ownership of its transfer plan.

    ``replan`` controls how a sparsity pattern unseen by the session is
    planned: ``"full"`` (default) builds extraction plans and pipelines from
    scratch, ``"patch"``/``"auto"`` incrementally patch the session's most
    recent plan/pipeline of the same configuration (see
    :meth:`SubmatrixContext.block_plan_for`) — results are bitwise identical
    in every mode.  ``mu_bracket`` optionally seeds the canonical ensemble's
    μ-bisection with a warm ``(lo, hi)`` bracket (expanded automatically if
    it does not bracket the electron count); a warm bracket changes the
    bisection's iterate sequence, so the resulting μ is not bitwise
    reproducible against a cold start — both converge the electron count
    to within ``mu_tolerance``, but at T = 0 the μ values may settle at
    different points of a degenerate gap plateau.  ``prepared``
    optionally supplies a :class:`PreparedStep` computed ahead of time
    (the trajectory driver's prefetch); it is used only when its filter
    threshold and block sizes match the session's, so a stale prefetch
    silently falls back to in-place preparation.

    This wrapper requests the ``density`` observable alone through
    :func:`repro.api.observables.compute_observables`; multi-observable
    callers use that entry point (or :meth:`SubmatrixContext.observables`)
    directly and share one decomposition pass across observables.
    """
    bundle = compute_observables(
        context,
        K,
        S,
        blocks,
        observables=("density",),
        mu=mu,
        n_electrons=n_electrons,
        solver=solver,
        grouping=grouping,
        mu_tolerance=mu_tolerance,
        max_mu_iterations=max_mu_iterations,
        ranks=ranks,
        distribution=distribution,
        replan=replan,
        mu_bracket=mu_bracket,
        prepared=prepared,
    )
    return bundle.results["density"]
