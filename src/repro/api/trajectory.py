"""SCF/MD trajectory driver with cross-step plan and session reuse.

The submatrix method's headline use case (Sec. VII of the paper) is the
repeated construction of the density matrix along an SCF or MD trajectory:
the geometry moves a little every step, the matrix *values* change, but the
block-sparsity pattern of the filtered orthogonalized Kohn–Sham matrix is
stable for many consecutive steps.  That is exactly the regime the session
machinery was built for —

* the :class:`~repro.core.plan.PlanCache` keys extraction plans by a
  content hash of the sparsity pattern, so a value-only step reuses the
  cached gather/scatter arrays without replanning;
* the context's pipeline cache keys the per-rank
  :class:`~repro.core.shard.ShardedPlan` and transfer plan by the same
  hash, so rank-sharded steps also reuse their shard layouts and bucketed
  stack layouts (:meth:`~repro.core.shard.RankShard.stack_tasks`);
* the session's persistent executor serves every step from one pool.

:func:`run_trajectory` (exposed as :meth:`SubmatrixContext.trajectory`)
drives a sequence of ``(K, S)`` geometry steps through
:func:`repro.api.density.compute_density`, watches the pattern content hash
to detect sparsity changes between steps, and returns the per-step
:class:`~repro.api.results.SubmatrixDFTResult` objects together with a
:class:`TrajectoryStats` record — plans built vs patched vs cache hits,
pattern changes, per-step wall times and (for sharded runs) fetch volumes.

**Incremental replans.**  When the pattern *does* drift (an atom pair
crossing the filter threshold adds or removes a few blocks), ``replan=``
decides how the new pattern is planned: ``"full"`` rebuilds every
extraction plan and pipeline from scratch, ``"patch"`` diffs the patterns
and rebuilds only the column groups the delta invalidates
(:meth:`~repro.core.plan.BlockSubmatrixPlan.patch`), and ``"auto"`` (the
default) patches for small deltas and rebuilds for large ones.  Patched
plans, shards and pipelines are **bitwise identical** to fully rebuilt
ones in every pack/extract/scatter result, so the mode changes cost only,
never numbers.

**Warm-started μ.**  ``warm_start_mu=True`` seeds each canonical step's
μ-bisection bracket from the previous step's μ (SCF-style).  This is the
one opt-in that trades exactness guarantees for speed: the bisection's
iterate sequence changes, so the converged μ (and with it the occupation
matrix) is *not* bitwise identical to a cold-started single-shot call —
both deliver an electron count within ``mu_tolerance`` of the target, but
at T = 0 the two μ values can even sit at different points of a
degenerate gap plateau.  Every other knob preserves the contract that
per-step results are bitwise identical to fresh single-shot
:meth:`SubmatrixContext.density` calls.

**Checkpoint/resume.**  ``checkpoint=`` points the driver at a
:class:`~repro.api.checkpoint.TrajectoryCheckpoint` directory: every
completed step is persisted atomically and a re-run against the same
directory replays the saved steps instead of recomputing them, resuming
the trajectory at the first unsaved step — with results bitwise identical
to an uninterrupted run (the per-step arrays round-trip as float64, and
the warm-start state is restored from the loaded results).
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.api.checkpoint import TrajectoryCheckpoint
from repro.api.results import SubmatrixDFTResult
from repro.core.combination import ColumnGrouping
from repro.parallel.executor import submit_with_inline_fallback

__all__ = [
    "TrajectoryStepRecord",
    "TrajectoryStats",
    "TrajectoryResult",
    "run_trajectory",
    "WARM_START_HALF_WIDTH",
    "adaptive_half_width",
]

#: Default half-width (in energy units of K) of the warm-started μ-bisection
#: bracket around the previous step's μ.  The bracket self-expands when μ
#: drifts out of it, so this only tunes the best-case iteration savings.
WARM_START_HALF_WIDTH = 0.05

#: A geometry step: the Kohn–Sham and overlap matrices of one configuration.
StepPair = Tuple[object, object]

#: Steps may be given as a materialized sequence, any iterable/generator of
#: ``(K, S)`` pairs, or a callback ``step(index) -> (K, S) | None`` (``None``
#: ends the trajectory).
StepsLike = Union[Iterable[StepPair], Callable[[int], Optional[StepPair]]]


@dataclasses.dataclass
class TrajectoryStepRecord:
    """Bookkeeping of one trajectory step.

    Attributes
    ----------
    step:
        Zero-based step index.
    wall_time:
        Wall-clock seconds of the step's density calculation.
    pattern_fingerprint:
        Content hash of the step's filtered block-sparsity pattern (the
        plan-cache key component).
    pattern_changed:
        Whether the pattern differs from the previous step's (the first
        step always counts as changed — there is nothing to reuse yet).
    plans_built / plan_cache_hits:
        Plan-cache misses and hits incurred by this step.  ``plans_built``
        counts every plan *construction*, whether full or incremental;
        ``plans_patched`` says how many of them were incremental.
    plans_patched / groups_rebuilt:
        Plans built by patching the previous step's plan, and the group
        plans those patches had to rebuild (the reused remainder was
        translated, not rebuilt).
    pipelines_built / pipelines_patched:
        Sharded pipelines built from scratch / patched from the previous
        step's pipeline by this step (both 0 on reuse).
    mu / n_electrons / mu_iterations:
        Ensemble outcome of the step (see
        :class:`~repro.api.results.SubmatrixDFTResult`).
    segment_fetch_bytes / block_fetch_bytes:
        Fetch volumes of the sharded initialization exchange (``None`` for
        single-process steps).
    warm_started:
        Whether this step's μ-bisection was seeded from the previous step's
        μ (``warm_start_mu=True`` and a canonical predecessor existed).
    retries / reassigned_stacks / kernel_fallbacks:
        Recovery counters of the step's density calculation (see
        :class:`~repro.api.results.SubmatrixDFTResult`; all 0 for clean or
        policy-less steps, and carried over verbatim for resumed steps).
    resumed:
        Whether the step was loaded from the trajectory checkpoint instead
        of recomputed (``wall_time`` is then the load time).
    overlap_seconds / exchange_hidden_fraction:
        The step's modeled hidden-exchange accounting when the session
        runs arrival-driven (``EngineConfig.overlap``; see
        :class:`~repro.api.results.SubmatrixDFTResult`).
    prefetched:
        Whether this step's pure preparation (orthogonalization, block
        conversion, pattern extraction) was computed on the prefetch
        thread while the previous step was still evaluating.
    stacks_reduced / refinement_passes / precision_error_bound:
        Mixed-precision accounting of the step's density calculation
        (see :class:`~repro.api.results.SubmatrixDFTResult`; all 0/None
        for the default FP64 :class:`~repro.api.config.PrecisionPolicy`).
    """

    step: int
    wall_time: float
    pattern_fingerprint: str
    pattern_changed: bool
    plans_built: int
    plan_cache_hits: int
    pipelines_built: int
    mu: float
    n_electrons: float
    mu_iterations: int
    segment_fetch_bytes: Optional[float]
    block_fetch_bytes: Optional[float]
    plans_patched: int = 0
    groups_rebuilt: int = 0
    pipelines_patched: int = 0
    warm_started: bool = False
    retries: int = 0
    reassigned_stacks: int = 0
    kernel_fallbacks: int = 0
    resumed: bool = False
    overlap_seconds: float = 0.0
    exchange_hidden_fraction: Optional[float] = None
    prefetched: bool = False
    stacks_reduced: int = 0
    refinement_passes: int = 0
    precision_error_bound: Optional[float] = None


@dataclasses.dataclass
class TrajectoryStats:
    """Aggregate statistics of one trajectory run.

    Attributes
    ----------
    n_steps:
        Number of geometry steps driven.
    plans_built / plan_cache_hits:
        Total plan constructions (full or incremental) and cache hits
        across the run; a value-only trajectory builds exactly one plan and
        hits the cache on every later step.
    plans_patched / groups_rebuilt:
        Plan constructions served by incremental patching, and the group
        plans those patches rebuilt (``replan="patch"``/``"auto"`` only).
    pattern_changes:
        Steps (beyond the first) whose sparsity pattern differed from their
        predecessor — each one invalidates the cross-step reuse once.
    executors_created:
        Worker pools created during the run (at most one: the session's
        persistent executor, and zero when it existed already or the
        configuration is serial).
    pipelines_built / pipelines_patched:
        Sharded pipelines built from scratch / patched from a predecessor
        during the run (both 0 when every rank-sharded step reused the
        context's cached pipeline).
    total_wall_time:
        Sum of the per-step wall times.
    steps:
        Per-step :class:`TrajectoryStepRecord` entries.
    retries / reassigned_stacks / kernel_fallbacks:
        Totals of the per-step recovery counters (0 unless the session's
        :class:`~repro.api.config.ResiliencePolicy` actually recovered
        from failures; see :class:`~repro.api.results.SubmatrixDFTResult`).
    steps_resumed:
        Steps loaded from the trajectory checkpoint instead of recomputed.
    overlap_seconds:
        Total modeled exchange time the arrival-driven engine hid behind
        compute across all steps (0.0 for synchronous sessions; see
        ``EngineConfig.overlap``).
    steps_prefetched:
        Steps whose pure preparation ran on the prefetch thread while the
        previous step was still evaluating.
    stacks_reduced / refinement_passes:
        Totals of the per-step mixed-precision counters (0 for the
        default FP64 :class:`~repro.api.config.PrecisionPolicy`).

    All ratio properties are well-defined for empty trajectories (they
    return 0.0 instead of dividing by zero).
    """

    n_steps: int
    plans_built: int
    plan_cache_hits: int
    pattern_changes: int
    executors_created: int
    pipelines_built: int
    total_wall_time: float
    steps: List[TrajectoryStepRecord]
    plans_patched: int = 0
    groups_rebuilt: int = 0
    pipelines_patched: int = 0
    retries: int = 0
    reassigned_stacks: int = 0
    kernel_fallbacks: int = 0
    steps_resumed: int = 0
    overlap_seconds: float = 0.0
    steps_prefetched: int = 0
    stacks_reduced: int = 0
    refinement_passes: int = 0

    @property
    def precision_error_bound(self) -> Optional[float]:
        """Max per-step a-priori mixed-precision error bound (``None``
        when no step ran any stack reduced)."""
        bounds = [
            r.precision_error_bound
            for r in self.steps
            if r.precision_error_bound is not None
        ]
        return max(bounds) if bounds else None

    @property
    def exchange_hidden_fraction(self) -> float:
        """Mean per-step hidden-exchange fraction of the arrival-driven
        steps (0.0 when no step ran overlapped)."""
        fractions = [
            r.exchange_hidden_fraction
            for r in self.steps
            if r.exchange_hidden_fraction is not None
        ]
        return float(np.mean(fractions)) if fractions else 0.0

    @property
    def reuse_rate(self) -> float:
        """Fraction of plan lookups served from the cache."""
        total = self.plans_built + self.plan_cache_hits
        return self.plan_cache_hits / total if total else 0.0

    @property
    def patch_rate(self) -> float:
        """Fraction of plan constructions served by incremental patching."""
        return self.plans_patched / self.plans_built if self.plans_built else 0.0


@dataclasses.dataclass
class TrajectoryResult:
    """Per-step density results plus the trajectory's reuse statistics.

    With ``observables=`` requested, the per-step entries are
    :class:`~repro.api.results.ObservableBundle` objects instead of plain
    :class:`~repro.api.results.SubmatrixDFTResult`; the ``mus`` /
    ``band_energies`` accessors read the density fields through the
    bundle's attribute delegation either way.
    """

    results: List[SubmatrixDFTResult]
    stats: TrajectoryStats

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[SubmatrixDFTResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> SubmatrixDFTResult:
        return self.results[index]

    @property
    def mus(self) -> np.ndarray:
        """Chemical potential of every step (float64, even for 0 steps)."""
        return np.asarray([r.mu for r in self.results], dtype=np.float64)

    @property
    def band_energies(self) -> np.ndarray:
        """Band-structure energy of every step (float64, even for 0 steps)."""
        return np.asarray(
            [r.band_energy for r in self.results], dtype=np.float64
        )


def _iterate_steps(
    steps: StepsLike, n_steps: Optional[int]
) -> Iterator[StepPair]:
    """Normalize the two step specifications into one iterator."""
    if callable(steps):
        index = 0
        while n_steps is None or index < n_steps:
            pair = steps(index)
            if pair is None:
                return
            yield pair
            index += 1
        return
    if n_steps is not None:
        for index, pair in enumerate(steps):
            if index >= n_steps:
                return
            yield pair
        return
    yield from steps


def adaptive_half_width(
    mu_history: "List[float]", mu_tolerance: float
) -> float:
    """Warm-start bracket half-width from the trajectory's μ-drift history.

    With at least two previous μ values the expected drift of the next
    step is estimated as the largest recent ``|Δμ|`` (up to the last four
    steps) and the bracket is sized to twice that — wide enough that a
    drift like the recent ones still lands inside, narrow enough that a
    settled trajectory bisects a tiny interval instead of the fixed
    :data:`WARM_START_HALF_WIDTH`.  The first warm step (a single previous
    μ, no drift measured yet) falls back to the fixed width.  The floor
    ``8 · mu_tolerance`` keeps the bracket meaningfully wider than the
    convergence window; the bracket still self-expands if μ escapes it.
    """
    floor = 8.0 * float(mu_tolerance)
    if len(mu_history) < 2:
        return max(WARM_START_HALF_WIDTH, floor)
    drifts = np.abs(np.diff(np.asarray(mu_history[-5:], dtype=float)))
    drift = float(drifts.max())
    if drift <= 0.0:
        return floor
    return max(2.0 * drift, floor)


def _step_value(value, index: int) -> Optional[float]:
    """Resolve a fixed-or-per-step ensemble parameter for one step."""
    if value is None:
        return None
    if np.ndim(value) == 0:
        return float(value)
    return float(value[index])


def _signature_value(value):
    """JSON form of a fixed-or-per-step ensemble parameter (for checkpoints)."""
    if value is None:
        return None
    if np.ndim(value) == 0:
        return float(value)
    return [float(v) for v in value]


def run_trajectory(
    context,
    steps: StepsLike,
    blocks,
    mu=None,
    n_electrons=None,
    solver: str = "eigen",
    grouping: Optional[ColumnGrouping] = None,
    mu_tolerance: float = 1e-9,
    max_mu_iterations: int = 200,
    ranks: Optional[int] = None,
    distribution=None,
    n_steps: Optional[int] = None,
    replan: str = "auto",
    warm_start_mu: bool = False,
    checkpoint=None,
    observables=None,
    observable_params=None,
    on_step=None,
    prefetch: Optional[bool] = None,
) -> TrajectoryResult:
    """Drive a sequence of geometry steps through one session.

    Parameters
    ----------
    context:
        The :class:`~repro.api.context.SubmatrixContext` whose plan cache,
        pipeline cache and persistent executor the steps share.
    steps:
        Geometry steps: an iterable of ``(K, S)`` matrix pairs or a
        callback ``step(index) -> (K, S)`` (return ``None`` to end the
        trajectory early).  ``None`` itself is rejected — an empty
        trajectory must be an empty sequence or a callback returning
        ``None`` at step 0.
    blocks:
        The :class:`~repro.chem.hamiltonian.BlockStructure` shared by all
        steps (MD moves atoms, not basis functions).
    mu / n_electrons:
        Exactly one must be given: a fixed chemical potential
        (grand-canonical) or electron count (canonical) — either a scalar
        applied to every step or a per-step sequence.
    solver, grouping, mu_tolerance, max_mu_iterations, ranks, distribution:
        Forwarded to every step's density calculation (see
        :meth:`SubmatrixContext.density`); with ``ranks`` the steps run
        rank-sharded and reuse the cached sharded pipeline.
    n_steps:
        Maximum number of steps (required information only when ``steps``
        is an unbounded callback; sequences end on their own).
    replan:
        How a step whose sparsity pattern drifted from its predecessor is
        planned.  ``"full"`` rebuilds plans and pipelines from scratch;
        ``"patch"`` always patches the previous step's plans
        (:meth:`~repro.core.plan.BlockSubmatrixPlan.patch`), rebuilding
        only the column groups the block delta invalidates; ``"auto"``
        (default) patches while the delta stays small
        (≤ :data:`repro.core.plan.PATCH_DELTA_FRACTION` of the blocks) and
        rebuilds beyond that.  **Bitwise contract:** all three modes
        produce identical densities, μ values and band energies — patched
        plans are property-tested to be bitwise identical to full replans,
        so ``replan`` trades planning time only.
    warm_start_mu:
        Seed each canonical step's μ-bisection bracket from the previous
        step's μ.  The half-width adapts to the trajectory's μ-drift
        history (:func:`adaptive_half_width`: twice the largest recent
        ``|Δμ|``, floored at ``8 · mu_tolerance``); the first warm step,
        with no drift measured yet, uses the fixed
        :data:`WARM_START_HALF_WIDTH`, and any bracket self-expands when
        the seed does not bracket the electron count.
        **Bitwise contract:**
        this *breaks* the bitwise identity of μ (and hence of the
        occupation matrices) with cold-started single-shot calls — both
        starts converge to an electron count within ``mu_tolerance`` of
        the target, but the μ iterate sequences differ, and at T = 0 the
        two can settle at different points of a degenerate gap plateau.
        Leave ``False`` (default) whenever exact reproducibility across
        call styles matters.
    checkpoint:
        Optional checkpoint directory (a path or a
        :class:`~repro.api.checkpoint.TrajectoryCheckpoint`).  Every
        completed step is persisted there atomically, and a later call
        pointed at the same directory *loads* the saved steps instead of
        recomputing them — a trajectory killed at step k resumes at
        step k.  **Bitwise contract:** resumed runs are bitwise identical
        to uninterrupted ones — results round-trip as float64 arrays, and
        the previous step's μ and pattern fingerprint are restored from
        the loaded result, so the first recomputed step (including a
        warm-started μ-bisection) sees exactly the state it would have
        seen in one uninterrupted run.  Resuming with different trajectory
        parameters raises
        :class:`~repro.api.checkpoint.CheckpointError`.
    observables / observable_params:
        ``observables=None`` (default) keeps the historical behavior:
        every step yields a plain
        :class:`~repro.api.results.SubmatrixDFTResult`.  A non-``None``
        sequence of observable names (which must include ``"density"`` —
        the driver's warm-start/statistics state reads the density fields)
        makes every step an
        :class:`~repro.api.results.ObservableBundle` assembled from one
        shared decomposition pass per step
        (:meth:`SubmatrixContext.observables`); ``observable_params``
        forwards per-observable assembly parameters.  Checkpoints persist
        and replay the full bundle, and the checkpoint signature records
        the observable set — a density-only checkpoint written before this
        option existed still resumes a density-only trajectory.
    on_step:
        Optional callback ``on_step(index, result)`` invoked after every
        completed step, resumed steps included — the feedback hook of the
        SCF driver (:func:`repro.api.scf.run_scf`).  Exceptions propagate
        and abort the trajectory.
    prefetch:
        ``None`` (default) prefetches step preparation whenever the
        session runs overlapped (``EngineConfig.overlap``); ``False``
        forces synchronous stepping even then.  Sequential drivers whose
        step ``i+1`` depends on step ``i``'s result (SCF density mixing)
        need ``prefetch=False``: the overlap engine would otherwise pull
        step ``i+1`` from the callback before step ``i`` has completed.

    Returns
    -------
    TrajectoryResult
        Per-step results (bitwise identical to fresh single-shot
        :meth:`SubmatrixContext.density` calls unless ``warm_start_mu``
        is enabled) and the reuse statistics.
    """
    from repro.api.density import compute_density, prepare_step
    from repro.api.observables import compute_observables, normalize_observables

    context._check_open()
    if steps is None:
        raise ValueError(
            "steps must be a sequence of (K, S) pairs or a callback "
            "step(index) -> (K, S) | None, not None"
        )
    context._check_replan(replan)
    if (mu is None) == (n_electrons is None):
        raise ValueError("specify exactly one of mu and n_electrons")
    observable_names = None
    if observables is not None:
        observable_names = normalize_observables(observables)
        if "density" not in observable_names:
            raise ValueError(
                "trajectory observables must include 'density' (the driver's "
                "warm-start and statistics state reads the density fields)"
            )

    ckpt: Optional[TrajectoryCheckpoint] = None
    if checkpoint is not None:
        ckpt = (
            checkpoint
            if isinstance(checkpoint, TrajectoryCheckpoint)
            else TrajectoryCheckpoint(checkpoint)
        )
        signature = {
            "solver": solver,
            "mu": _signature_value(mu),
            "n_electrons": _signature_value(n_electrons),
            "ranks": None if ranks is None else int(ranks),
            "replan": replan,
            "warm_start_mu": bool(warm_start_mu),
            "mu_tolerance": float(mu_tolerance),
            "max_mu_iterations": int(max_mu_iterations),
        }
        if observable_names is not None:
            # only non-default requests extend the signature, so density-only
            # checkpoint directories written before multi-observable
            # trajectories existed keep resuming unchanged
            signature["observables"] = sorted(observable_names)
        ckpt.ensure_signature(signature)

    results: List[SubmatrixDFTResult] = []
    records: List[TrajectoryStepRecord] = []
    previous_fingerprint: Optional[str] = None
    previous_mu: Optional[float] = None
    mu_history: List[float] = []
    pattern_changes = 0
    session_before = context.stats()
    executors_at_start = session_before["executors_created"]
    cache_before = dict(context.plan_cache.stats)

    step_iter = _iterate_steps(steps, n_steps)
    prefetch_pool: Optional[ThreadPoolExecutor] = None
    prepare_pool: Optional[ProcessPoolExecutor] = None
    use_prefetch = context.config.overlap if prefetch is None else bool(prefetch)
    if use_prefetch:
        prefetch_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="trajectory-prefetch"
        )
        if context.config.prefetch_backend == "process":
            # prepare_step is numpy-heavy, pure and picklable end to end,
            # so shipping it to a worker process lets it genuinely overlap
            # the current step's evaluation instead of contending for the
            # GIL on the prefetch thread (the PR-7 ~0.97× problem)
            prepare_pool = ProcessPoolExecutor(max_workers=1)
    end_of_steps = object()

    def _fetch_next():
        # runs on the prefetch thread: pull the next step and do its pure
        # preparation (orthogonalize, block-convert, pattern extraction —
        # no session state is touched).  Exceptions, including a raising
        # step callback, are captured by the future and re-raised at the
        # collect point in _drive, which is exactly where the synchronous
        # drive would have raised them
        try:
            pair = next(step_iter)
        except StopIteration:
            return end_of_steps
        K, S = pair
        if prepare_pool is not None:
            # block GIL-free on the worker process; unpicklable steps (or
            # a broken pool) fall back to preparing inline on this thread
            resolve = submit_with_inline_fallback(
                prepare_pool, prepare_step, K, S, blocks, context.config.eps_filter
            )
            return K, S, resolve()
        return K, S, prepare_step(K, S, blocks, context.config.eps_filter)

    def _drive():
        if prefetch_pool is None:
            for K, S in step_iter:
                yield K, S, None
            return
        pending = prefetch_pool.submit(_fetch_next)
        while True:
            item = pending.result()
            if item is end_of_steps:
                return
            # step i+1's preparation overlaps step i's evaluation
            pending = prefetch_pool.submit(_fetch_next)
            yield item

    try:
        for index, (K, S, prepared) in enumerate(_drive()):
            step_n_electrons = _step_value(n_electrons, index)
            warm = (
                warm_start_mu
                and step_n_electrons is not None
                and previous_mu is not None
            )
            resumed = ckpt is not None and ckpt.has_step(index)
            if resumed:
                # replay a checkpointed step: the loaded result is
                # bit-exact, so restoring previous_mu/previous_fingerprint
                # from it hands the next computed step exactly the state of
                # an uninterrupted run — warm-started brackets included
                load_start = time.perf_counter()
                result = ckpt.load_step(index)
                step_wall = time.perf_counter() - load_start
                warm = False
            else:
                bracket_half_width = adaptive_half_width(
                    mu_history, mu_tolerance
                )
                bracket = (
                    (
                        previous_mu - bracket_half_width,
                        previous_mu + bracket_half_width,
                    )
                    if warm
                    else None
                )
                if observable_names is None:
                    result = compute_density(
                        context,
                        K,
                        S,
                        blocks,
                        mu=_step_value(mu, index),
                        n_electrons=step_n_electrons,
                        solver=solver,
                        grouping=grouping,
                        mu_tolerance=mu_tolerance,
                        max_mu_iterations=max_mu_iterations,
                        ranks=ranks,
                        distribution=distribution,
                        replan=replan,
                        mu_bracket=bracket,
                        prepared=prepared,
                    )
                else:
                    result = compute_observables(
                        context,
                        K,
                        S,
                        blocks,
                        observables=observable_names,
                        mu=_step_value(mu, index),
                        n_electrons=step_n_electrons,
                        solver=solver,
                        grouping=grouping,
                        mu_tolerance=mu_tolerance,
                        max_mu_iterations=max_mu_iterations,
                        ranks=ranks,
                        distribution=distribution,
                        replan=replan,
                        mu_bracket=bracket,
                        prepared=prepared,
                        observable_params=observable_params,
                    )
                step_wall = result.wall_time
                if ckpt is not None:
                    ckpt.save_step(index, result)
            cache_after = dict(context.plan_cache.stats)
            session_after = context.stats()
            fingerprint = result.pattern_fingerprint or ""
            changed = fingerprint != previous_fingerprint
            if changed and previous_fingerprint is not None:
                pattern_changes += 1
            records.append(
                TrajectoryStepRecord(
                    step=index,
                    wall_time=step_wall,
                    pattern_fingerprint=fingerprint,
                    pattern_changed=changed,
                    plans_built=cache_after["misses"] - cache_before["misses"],
                    plan_cache_hits=cache_after["hits"] - cache_before["hits"],
                    pipelines_built=session_after["pipelines_built"]
                    - session_before["pipelines_built"],
                    mu=result.mu,
                    n_electrons=result.n_electrons,
                    mu_iterations=result.mu_iterations,
                    segment_fetch_bytes=result.segment_fetch_bytes,
                    block_fetch_bytes=result.block_fetch_bytes,
                    plans_patched=cache_after["patches"]
                    - cache_before["patches"],
                    groups_rebuilt=cache_after["groups_rebuilt"]
                    - cache_before["groups_rebuilt"],
                    pipelines_patched=session_after["pipelines_patched"]
                    - session_before["pipelines_patched"],
                    warm_started=bool(warm),
                    retries=result.retries,
                    reassigned_stacks=result.reassigned_stacks,
                    kernel_fallbacks=result.kernel_fallbacks,
                    resumed=resumed,
                    overlap_seconds=float(result.overlap_seconds),
                    exchange_hidden_fraction=result.exchange_hidden_fraction,
                    prefetched=prepared is not None and not resumed,
                    stacks_reduced=result.stacks_reduced,
                    refinement_passes=result.refinement_passes,
                    precision_error_bound=result.precision_error_bound,
                )
            )
            results.append(result)
            previous_fingerprint = fingerprint
            previous_mu = float(result.mu)
            mu_history.append(previous_mu)
            cache_before = cache_after
            session_before = session_after
            if on_step is not None:
                on_step(index, result)
    finally:
        if prefetch_pool is not None:
            prefetch_pool.shutdown(wait=True, cancel_futures=True)
        if prepare_pool is not None:
            prepare_pool.shutdown(wait=True, cancel_futures=True)

    stats = TrajectoryStats(
        n_steps=len(results),
        plans_built=sum(r.plans_built for r in records),
        plan_cache_hits=sum(r.plan_cache_hits for r in records),
        pattern_changes=pattern_changes,
        executors_created=context.stats()["executors_created"] - executors_at_start,
        pipelines_built=sum(r.pipelines_built for r in records),
        total_wall_time=float(sum(r.wall_time for r in records)),
        steps=records,
        plans_patched=sum(r.plans_patched for r in records),
        groups_rebuilt=sum(r.groups_rebuilt for r in records),
        pipelines_patched=sum(r.pipelines_patched for r in records),
        retries=sum(r.retries for r in records),
        reassigned_stacks=sum(r.reassigned_stacks for r in records),
        kernel_fallbacks=sum(r.kernel_fallbacks for r in records),
        steps_resumed=sum(1 for r in records if r.resumed),
        overlap_seconds=float(sum(r.overlap_seconds for r in records)),
        steps_prefetched=sum(1 for r in records if r.prefetched),
        stacks_reduced=sum(r.stacks_reduced for r in records),
        refinement_passes=sum(r.refinement_passes for r in records),
    )
    return TrajectoryResult(results=results, stats=stats)
