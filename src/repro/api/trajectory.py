"""SCF/MD trajectory driver with cross-step plan and session reuse.

The submatrix method's headline use case (Sec. VII of the paper) is the
repeated construction of the density matrix along an SCF or MD trajectory:
the geometry moves a little every step, the matrix *values* change, but the
block-sparsity pattern of the filtered orthogonalized Kohn–Sham matrix is
stable for many consecutive steps.  That is exactly the regime the session
machinery was built for —

* the :class:`~repro.core.plan.PlanCache` keys extraction plans by a
  content hash of the sparsity pattern, so a value-only step reuses the
  cached gather/scatter arrays without replanning;
* the context's pipeline cache keys the per-rank
  :class:`~repro.core.shard.ShardedPlan` and transfer plan by the same
  hash, so rank-sharded steps also reuse their shard layouts and bucketed
  stack layouts (:meth:`~repro.core.shard.RankShard.stack_tasks`);
* the session's persistent executor serves every step from one pool.

:func:`run_trajectory` (exposed as :meth:`SubmatrixContext.trajectory`)
drives a sequence of ``(K, S)`` geometry steps through
:func:`repro.api.density.compute_density`, watches the pattern content hash
to detect sparsity changes between steps, and returns the per-step
:class:`~repro.api.results.SubmatrixDFTResult` objects together with a
:class:`TrajectoryStats` record — plans built vs cache hits, pattern
changes, per-step wall times and (for sharded runs) fetch volumes.  Every
step is computed by the same code path as a single-shot
:meth:`SubmatrixContext.density` call, so per-step results are bitwise
identical to fresh calls; the driver only removes the redundant planning
work between them.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.api.results import SubmatrixDFTResult
from repro.core.combination import ColumnGrouping

__all__ = [
    "TrajectoryStepRecord",
    "TrajectoryStats",
    "TrajectoryResult",
    "run_trajectory",
]

#: A geometry step: the Kohn–Sham and overlap matrices of one configuration.
StepPair = Tuple[object, object]

#: Steps may be given as a materialized sequence, any iterable/generator of
#: ``(K, S)`` pairs, or a callback ``step(index) -> (K, S) | None`` (``None``
#: ends the trajectory).
StepsLike = Union[Iterable[StepPair], Callable[[int], Optional[StepPair]]]


@dataclasses.dataclass
class TrajectoryStepRecord:
    """Bookkeeping of one trajectory step.

    Attributes
    ----------
    step:
        Zero-based step index.
    wall_time:
        Wall-clock seconds of the step's density calculation.
    pattern_fingerprint:
        Content hash of the step's filtered block-sparsity pattern (the
        plan-cache key component).
    pattern_changed:
        Whether the pattern differs from the previous step's (the first
        step always counts as changed — there is nothing to reuse yet).
    plans_built / plan_cache_hits:
        Plan-cache misses and hits incurred by this step.
    pipelines_built:
        Sharded pipelines built by this step (0 on reuse).
    mu / n_electrons / mu_iterations:
        Ensemble outcome of the step (see
        :class:`~repro.api.results.SubmatrixDFTResult`).
    segment_fetch_bytes / block_fetch_bytes:
        Fetch volumes of the sharded initialization exchange (``None`` for
        single-process steps).
    """

    step: int
    wall_time: float
    pattern_fingerprint: str
    pattern_changed: bool
    plans_built: int
    plan_cache_hits: int
    pipelines_built: int
    mu: float
    n_electrons: float
    mu_iterations: int
    segment_fetch_bytes: Optional[float]
    block_fetch_bytes: Optional[float]


@dataclasses.dataclass
class TrajectoryStats:
    """Aggregate statistics of one trajectory run.

    Attributes
    ----------
    n_steps:
        Number of geometry steps driven.
    plans_built / plan_cache_hits:
        Total plan-cache misses and hits across the run; a value-only
        trajectory builds exactly one plan and hits the cache on every
        later step.
    pattern_changes:
        Steps (beyond the first) whose sparsity pattern differed from their
        predecessor — each one invalidates the cross-step reuse once.
    executors_created:
        Worker pools created during the run (at most one: the session's
        persistent executor, and zero when it existed already or the
        configuration is serial).
    pipelines_built:
        Sharded pipelines built during the run (0 when every rank-sharded
        step reused the context's cached pipeline).
    total_wall_time:
        Sum of the per-step wall times.
    steps:
        Per-step :class:`TrajectoryStepRecord` entries.
    """

    n_steps: int
    plans_built: int
    plan_cache_hits: int
    pattern_changes: int
    executors_created: int
    pipelines_built: int
    total_wall_time: float
    steps: List[TrajectoryStepRecord]

    @property
    def reuse_rate(self) -> float:
        """Fraction of plan lookups served from the cache."""
        total = self.plans_built + self.plan_cache_hits
        return self.plan_cache_hits / total if total else 0.0


@dataclasses.dataclass
class TrajectoryResult:
    """Per-step density results plus the trajectory's reuse statistics."""

    results: List[SubmatrixDFTResult]
    stats: TrajectoryStats

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[SubmatrixDFTResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> SubmatrixDFTResult:
        return self.results[index]

    @property
    def mus(self) -> np.ndarray:
        """Chemical potential of every step."""
        return np.asarray([r.mu for r in self.results])

    @property
    def band_energies(self) -> np.ndarray:
        """Band-structure energy of every step."""
        return np.asarray([r.band_energy for r in self.results])


def _iterate_steps(
    steps: StepsLike, n_steps: Optional[int]
) -> Iterator[StepPair]:
    """Normalize the two step specifications into one iterator."""
    if callable(steps):
        index = 0
        while n_steps is None or index < n_steps:
            pair = steps(index)
            if pair is None:
                return
            yield pair
            index += 1
        return
    if n_steps is not None:
        for index, pair in enumerate(steps):
            if index >= n_steps:
                return
            yield pair
        return
    yield from steps


def _step_value(value, index: int) -> Optional[float]:
    """Resolve a fixed-or-per-step ensemble parameter for one step."""
    if value is None:
        return None
    if np.ndim(value) == 0:
        return float(value)
    return float(value[index])


def run_trajectory(
    context,
    steps: StepsLike,
    blocks,
    mu=None,
    n_electrons=None,
    solver: str = "eigen",
    grouping: Optional[ColumnGrouping] = None,
    mu_tolerance: float = 1e-9,
    max_mu_iterations: int = 200,
    ranks: Optional[int] = None,
    distribution=None,
    n_steps: Optional[int] = None,
) -> TrajectoryResult:
    """Drive a sequence of geometry steps through one session.

    Parameters
    ----------
    context:
        The :class:`~repro.api.context.SubmatrixContext` whose plan cache,
        pipeline cache and persistent executor the steps share.
    steps:
        Geometry steps: an iterable of ``(K, S)`` matrix pairs or a
        callback ``step(index) -> (K, S)`` (return ``None`` to end the
        trajectory early).
    blocks:
        The :class:`~repro.chem.hamiltonian.BlockStructure` shared by all
        steps (MD moves atoms, not basis functions).
    mu / n_electrons:
        Exactly one must be given: a fixed chemical potential
        (grand-canonical) or electron count (canonical) — either a scalar
        applied to every step or a per-step sequence.
    solver, grouping, mu_tolerance, max_mu_iterations, ranks, distribution:
        Forwarded to every step's density calculation (see
        :meth:`SubmatrixContext.density`); with ``ranks`` the steps run
        rank-sharded and reuse the cached sharded pipeline.
    n_steps:
        Maximum number of steps (required information only when ``steps``
        is an unbounded callback; sequences end on their own).

    Returns
    -------
    TrajectoryResult
        Per-step results (bitwise identical to fresh single-shot
        :meth:`SubmatrixContext.density` calls) and the reuse statistics.
    """
    from repro.api.density import compute_density

    context._check_open()
    if (mu is None) == (n_electrons is None):
        raise ValueError("specify exactly one of mu and n_electrons")

    results: List[SubmatrixDFTResult] = []
    records: List[TrajectoryStepRecord] = []
    previous_fingerprint: Optional[str] = None
    pattern_changes = 0
    session_before = context.stats()
    executors_at_start = session_before["executors_created"]
    cache_before = dict(context.plan_cache.stats)

    for index, (K, S) in enumerate(_iterate_steps(steps, n_steps)):
        result = compute_density(
            context,
            K,
            S,
            blocks,
            mu=_step_value(mu, index),
            n_electrons=_step_value(n_electrons, index),
            solver=solver,
            grouping=grouping,
            mu_tolerance=mu_tolerance,
            max_mu_iterations=max_mu_iterations,
            ranks=ranks,
            distribution=distribution,
        )
        cache_after = dict(context.plan_cache.stats)
        session_after = context.stats()
        fingerprint = result.pattern_fingerprint or ""
        changed = fingerprint != previous_fingerprint
        if changed and previous_fingerprint is not None:
            pattern_changes += 1
        records.append(
            TrajectoryStepRecord(
                step=index,
                wall_time=result.wall_time,
                pattern_fingerprint=fingerprint,
                pattern_changed=changed,
                plans_built=cache_after["misses"] - cache_before["misses"],
                plan_cache_hits=cache_after["hits"] - cache_before["hits"],
                pipelines_built=session_after["pipelines_built"]
                - session_before["pipelines_built"],
                mu=result.mu,
                n_electrons=result.n_electrons,
                mu_iterations=result.mu_iterations,
                segment_fetch_bytes=result.segment_fetch_bytes,
                block_fetch_bytes=result.block_fetch_bytes,
            )
        )
        results.append(result)
        previous_fingerprint = fingerprint
        cache_before = cache_after
        session_before = session_after

    stats = TrajectoryStats(
        n_steps=len(results),
        plans_built=sum(r.plans_built for r in records),
        plan_cache_hits=sum(r.plan_cache_hits for r in records),
        pattern_changes=pattern_changes,
        executors_created=context.stats()["executors_created"] - executors_at_start,
        pipelines_built=sum(r.pipelines_built for r in records),
        total_wall_time=float(sum(r.wall_time for r in records)),
        steps=records,
    )
    return TrajectoryResult(results=results, stats=stats)
