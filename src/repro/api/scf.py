"""Self-consistent-field driver: density mixing on top of the trajectory API.

The paper's target workload is linear-scaling DFT, where the Kohn–Sham
matrix depends on the density it produces — K = K(D) — and the ground
state is the fixed point of that map.  :func:`run_scf` closes the loop
with the classic linear density-mixing iteration,

    D_in(i+1) = (1 − α) · D_in(i) + α · D_out(i),

on top of :meth:`SubmatrixContext.trajectory`: every SCF iteration is one
trajectory step (``prefetch=False`` keeps the overlap engine from pulling
step i+1 before step i's density exists), so the fixed point search
inherits the whole session machinery for free — plan/pipeline reuse
across iterations (the sparsity pattern is stable or drifts slowly),
warm-started μ-bisection seeded from the previous iteration's μ, rank
sharding, checkpoint/resume and multi-observable steps (request
``observables=("density", "energy_weighted_density")`` to track the band
energy from the same decomposition pass that produced each iterate).

The caller supplies the physics as ``update(density_ao, iteration) → K``:
the map from the mixed input density to the next Kohn–Sham matrix.  The
driver owns only the mixing, the convergence test
(``max |D_out − D_in| < tolerance``) and the iteration bookkeeping.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

import numpy as np

from repro.api.trajectory import TrajectoryResult

__all__ = ["SCFResult", "run_scf"]


@dataclasses.dataclass
class SCFResult:
    """Outcome of a density-mixing SCF run.

    Attributes
    ----------
    converged:
        Whether ``max |D_out − D_in|`` dropped below ``tolerance`` before
        ``max_iterations`` was exhausted.
    n_iterations:
        Number of SCF iterations actually executed.
    density_changes:
        Per-iteration ``max |D_out − D_in|`` (the first iteration has no
        input density yet and records ``inf``).
    band_energies:
        Per-iteration band-structure energy g_s·Tr(D_AO K) (Eq. 10).
    mus:
        Per-iteration chemical potential.
    mixed_density:
        The final mixed density matrix (AO basis, float64) — the SCF
        fixed-point estimate.
    trajectory:
        The underlying :class:`~repro.api.trajectory.TrajectoryResult`
        with the per-iteration results (plain density results, or
        :class:`~repro.api.results.ObservableBundle` when ``observables=``
        was forwarded) and the session-reuse statistics.
    """

    converged: bool
    n_iterations: int
    density_changes: np.ndarray
    band_energies: np.ndarray
    mus: np.ndarray
    mixed_density: np.ndarray
    trajectory: TrajectoryResult

    @property
    def final(self):
        """The last iteration's step result (density result or bundle)."""
        return self.trajectory.results[-1]


def run_scf(
    context,
    K0,
    S,
    blocks,
    update: Callable[[np.ndarray, int], object],
    mu: Optional[float] = None,
    n_electrons: Optional[float] = None,
    mixing: float = 0.5,
    tolerance: float = 1e-6,
    max_iterations: int = 50,
    solver: str = "eigen",
    warm_start_mu: bool = True,
    observables=None,
    observable_params=None,
    replan: str = "auto",
    checkpoint=None,
    **trajectory_kwargs,
) -> SCFResult:
    """Iterate ``K → D → mix → update(K)`` to self-consistency.

    Parameters
    ----------
    context:
        The :class:`~repro.api.context.SubmatrixContext` running every
        iteration (one session: plans, pipelines and the executor are
        shared across the whole SCF loop).
    K0 / S / blocks:
        The initial Kohn–Sham matrix, the overlap matrix and the shared
        block structure.  S and the blocks are fixed across iterations
        (density mixing moves electrons, not basis functions).
    update:
        The physics callback ``update(density_ao, iteration) → K_next``:
        builds the next Kohn–Sham matrix from the *mixed* input density.
        Called after every non-final iteration; its result feeds the next
        trajectory step.
    mu / n_electrons:
        Exactly one must be given (grand-canonical / canonical ensemble),
        exactly as in :meth:`SubmatrixContext.density`.
    mixing:
        Linear mixing parameter α ∈ (0, 1]: the fraction of the fresh
        output density blended into the input density each iteration.
        α = 1 is plain fixed-point iteration; smaller values damp
        charge-sloshing divergence at the cost of more iterations.
    tolerance:
        Convergence threshold on ``max |D_out − D_in|``.
    max_iterations:
        Iteration budget; exhausting it returns ``converged=False``
        (no exception — the partial history is often exactly what a
        caller diagnosing a divergent mix needs).
    solver / warm_start_mu / observables / observable_params / replan /
    checkpoint / **trajectory_kwargs:
        Forwarded to :meth:`SubmatrixContext.trajectory`.
        ``warm_start_mu`` defaults to ``True`` here (unlike the raw
        trajectory driver): seeding each iteration's μ-bisection from the
        previous iterate is the natural SCF regime, and the bitwise-exact
        cold-start contract matters less inside a fixed-point loop whose
        input matrices change every iteration anyway.  ``observables``
        must include ``"density"`` when given (trajectory contract).

    Returns
    -------
    SCFResult
        Convergence flag, per-iteration histories and the underlying
        trajectory result.
    """
    if mixing <= 0.0 or mixing > 1.0:
        raise ValueError("mixing must lie in (0, 1]")
    if tolerance <= 0.0:
        raise ValueError("tolerance must be positive")
    if max_iterations < 1:
        raise ValueError("max_iterations must be at least 1")
    if not callable(update):
        raise TypeError("update must be callable: update(density_ao, i) -> K")

    state = {"K": K0, "mixed": None, "converged": False}
    density_changes: List[float] = []

    def steps(index: int):
        if state["converged"] or index >= max_iterations:
            return None
        return (state["K"], S)

    def on_step(index: int, result) -> None:
        output = np.asarray(result.density_ao, dtype=np.float64)
        if state["mixed"] is None:
            # no input density yet: seed the mix with the first iterate
            density_changes.append(float("inf"))
            state["mixed"] = output
        else:
            change = float(np.abs(output - state["mixed"]).max())
            density_changes.append(change)
            state["mixed"] = (1.0 - mixing) * state["mixed"] + mixing * output
            if change < tolerance:
                state["converged"] = True
                return
        if index + 1 < max_iterations:
            state["K"] = update(state["mixed"], index)

    trajectory = context.trajectory(
        steps,
        blocks,
        mu=mu,
        n_electrons=n_electrons,
        solver=solver,
        warm_start_mu=warm_start_mu,
        observables=observables,
        observable_params=observable_params,
        replan=replan,
        checkpoint=checkpoint,
        on_step=on_step,
        # SCF is inherently sequential: step i+1's K does not exist until
        # step i's density has been mixed, so the overlap engine's step
        # prefetch must stay off
        prefetch=False,
        **trajectory_kwargs,
    )
    return SCFResult(
        converged=bool(state["converged"]),
        n_iterations=len(trajectory.results),
        density_changes=np.asarray(density_changes, dtype=np.float64),
        band_energies=trajectory.band_energies,
        mus=trajectory.mus,
        mixed_density=(
            np.asarray(state["mixed"], dtype=np.float64)
            if state["mixed"] is not None
            else np.zeros((0, 0))
        ),
        trajectory=trajectory,
    )
