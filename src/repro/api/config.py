"""One configuration object for the whole submatrix engine.

Every entry point of the reproduction — :class:`~repro.core.method.SubmatrixMethod`,
:class:`~repro.core.sign_dft.SubmatrixDFTSolver`,
:class:`~repro.core.runner.DistributedSubmatrixPipeline` and the
:class:`~repro.api.context.SubmatrixContext` session — used to re-thread its
own overlapping keyword arguments (engine, backend, worker count, bucket
padding, balancing strategy, rank count, filter threshold).
:class:`EngineConfig` collects them in one validated, immutable place; the
facades build their config from legacy kwargs, the session takes it
directly, and overlapping knobs can no longer drift apart between layers.

This module sits at the bottom of the dependency graph (nothing from
:mod:`repro.core` is imported here), so both the core facades and the
session layer can share its constants without import cycles.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

from repro.parallel.executor import default_worker_count

__all__ = [
    "EngineConfig",
    "ResiliencePolicy",
    "PrecisionPolicy",
    "ENGINES",
    "BACKENDS",
    "BALANCE_STRATEGIES",
    "PREFETCH_BACKENDS",
    "PRECISION_POLICY_MODES",
    "EIGENSOLVE_FLOP_CONSTANT",
]

#: Execution engines of the submatrix method (see :mod:`repro.core.method`).
ENGINES = ("naive", "plan", "batched")

#: Parallel backends of :func:`repro.parallel.executor.map_parallel`.
BACKENDS = ("serial", "thread", "process")

#: Submatrix→rank assignment strategies of the distributed pipeline.
BALANCE_STRATEGIES = ("chunks", "stacks", "round_robin")

#: Where ``overlap=True`` trajectory drivers run the next step's
#: ``prepare_step`` work: ``"process"`` ships it to a single-worker process
#: pool (the numpy-heavy preparation then overlaps the current step's
#: evaluation without contending for the GIL), ``"thread"`` keeps it on the
#: prefetch thread (the PR-7 behaviour, useful when step matrices are not
#: picklable — the process path also falls back to inline execution in that
#: case, see :func:`repro.parallel.executor.submit_with_inline_fallback`).
PREFETCH_BACKENDS = ("process", "thread")

#: Precision modes of :class:`PrecisionPolicy`.  ``"fp64"`` is the exact
#: pre-seam path; ``"fp32"``/``"fp16"`` force the paper's FP32 and FP16'
#: (tensor-core mixed) emulated modes for the iterative sign solves;
#: ``"auto"`` picks per stack from the :mod:`repro.accel.perf_model`
#: throughput model under the configured error budget.
PRECISION_POLICY_MODES = ("fp64", "fp32", "fp16", "auto")

#: FLOPs of a dense symmetric eigendecomposition plus the two back
#: transformations Q·diag·Qᵀ, expressed as a multiple of n³.  dsyevd costs
#: roughly 4/3·n³ for the tridiagonal reduction plus ~4·n³ for the
#: divide-and-conquer back-transformation; forming Q Λ' Qᵀ adds ~4·n³.
EIGENSOLVE_FLOP_CONSTANT = 9.0


@dataclasses.dataclass(frozen=True)
class ResiliencePolicy:
    """Failure-handling policy of the submatrix engine.

    Carried on :class:`EngineConfig` and threaded through
    :class:`~repro.api.context.SubmatrixContext` →
    :class:`~repro.core.runner.DistributedSubmatrixPipeline` →
    ``run_stacks`` and the iterative sign kernels.  Every recovery path
    preserves the engine's bitwise-identity discipline: a retried rank
    re-executes the *same* shard closure (scatter ranges are disjoint and
    idempotent), a retried kernel restarts the iteration from the original
    shifted submatrix (per-matrix iterates are independent of the stack
    composition), and the degraded single-process batched engine is the
    very path the sharded pipeline is property-tested against — so a
    recovered run equals the fault-free run bit for bit.

    Attributes
    ----------
    max_rank_retries:
        Retry rounds for failed pipeline rank tasks before the run is
        declared failed (and, with ``degrade_to_batched``, degraded).  The
        default 1 recovers every transient single-fault scenario at the
        cost of one re-execution.
    rank_rebalance:
        Reassign a failed rank's shard work to the surviving ranks via the
        existing LPT load-balance machinery
        (:func:`~repro.core.load_balance.assign_balanced_stacks`) instead
        of retrying it in place.  Affects bookkeeping (which survivor is
        billed) and the ``reassigned_stacks`` counter, never results.
    backoff_base:
        Seconds slept before retry round *r*: ``backoff_base · 2^(r−1)``.
        The default 0 keeps tests and simulations instantaneous; real
        deployments would set tens of milliseconds.
    stage_timeout:
        Wall-clock budget in seconds for one pipeline stage *including*
        its retry rounds; once exceeded, no further retries are attempted
        and the stage fails over to degradation.  ``None`` (default) means
        no timeout — the simulated substrate cannot hang.
    kernel_retries:
        Convergence retries of an iterative sign kernel
        (``newton_schulz``/``pade``) per stack before falling back.  Each
        retry restarts the non-converged matrices from their original
        shifted values with an iteration budget scaled by
        ``kernel_retry_growth`` — a genuine tightened-parameter retry, and
        bitwise identical to a fault-free solve once it converges.
    kernel_retry_growth:
        Multiplier applied to the iteration budget per kernel retry round
        (default 4: 100 → 400 → 1600 iterations).
    kernel_fallback:
        Registered kernel evaluating any still-non-converged submatrices
        after the retries (default ``"eigen"``, the paper's robust dense
        solver).  ``None`` raises
        :class:`~repro.signfn.registry.KernelConvergenceError` instead.
        Fallbacks are *recorded* (``kernel_fallbacks`` counters), never
        raised.
    degrade_to_batched:
        After ``max_rank_retries`` exhausted rounds, re-run the whole
        evaluation through the single-process batched engine (bitwise
        identical to the sharded path) instead of raising.  With ``False``
        the pipeline raises
        :class:`~repro.core.runner.PipelineExecutionError`.
    fault_injector:
        Optional :class:`~repro.parallel.faults.FaultInjector` consulted at
        the ``"rank"`` and ``"kernel"`` sites — the deterministic test
        substrate for all of the above.  Excluded from equality/hashing.
    """

    max_rank_retries: int = 1
    rank_rebalance: bool = True
    backoff_base: float = 0.0
    stage_timeout: Optional[float] = None
    kernel_retries: int = 1
    kernel_retry_growth: float = 4.0
    kernel_fallback: Optional[str] = "eigen"
    degrade_to_batched: bool = True
    fault_injector: Optional[object] = dataclasses.field(
        default=None, compare=False
    )

    def __post_init__(self):
        self.validate()

    def validate(self) -> "ResiliencePolicy":
        """Check every field; returns ``self`` so calls can be chained."""
        if self.max_rank_retries < 0:
            raise ValueError("max_rank_retries must be non-negative")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be non-negative")
        if self.stage_timeout is not None and self.stage_timeout <= 0:
            raise ValueError("stage_timeout must be positive (or None)")
        if self.kernel_retries < 0:
            raise ValueError("kernel_retries must be non-negative")
        if self.kernel_retry_growth < 1.0:
            raise ValueError("kernel_retry_growth must be at least 1")
        if self.kernel_fallback is not None and not isinstance(
            self.kernel_fallback, str
        ):
            raise ValueError("kernel_fallback must be a kernel name or None")
        return self

    def replace(self, **changes) -> "ResiliencePolicy":
        """A validated copy with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def disabled(cls) -> "ResiliencePolicy":
        """Policy with every recovery mechanism off (the PR-5 behaviour).

        Used as the baseline of ``benchmarks/bench_fault_recovery.py``:
        with this policy the engine takes the exact pre-resilience code
        paths, so the benchmark isolates the overhead of the layer.
        """
        return cls(
            max_rank_retries=0,
            rank_rebalance=False,
            kernel_retries=0,
            kernel_fallback=None,
            degrade_to_batched=False,
        )

    @property
    def active(self) -> bool:
        """Whether any recovery mechanism (or an injector) is configured.

        An inactive policy short-circuits to the unguarded pre-resilience
        execution paths, so it costs nothing.
        """
        return bool(
            self.max_rank_retries > 0
            or self.kernel_retries > 0
            or self.kernel_fallback is not None
            or self.degrade_to_batched
            or self.fault_injector is not None
        )


@dataclasses.dataclass(frozen=True)
class PrecisionPolicy:
    """Mixed-precision execution policy of the iterative sign solves.

    Carried on :class:`EngineConfig` and threaded through
    :class:`~repro.api.context.SubmatrixContext` →
    :func:`~repro.api.density.compute_density` →
    :class:`~repro.core.runner.DistributedSubmatrixPipeline` and the
    serving layer's batch keys.  With the default ``mode="fp64"`` the
    policy is inactive and every execution path is bitwise identical to
    the pre-seam engine; a reduced mode runs the batched sign solves of
    participating kernels (``MatrixFunction.supports_reduced_precision``)
    through the ``"emulated"`` array backend and recovers the target
    density accuracy with a warm-started FP64 Newton–Schulz refinement
    pass (see :mod:`repro.backend.mixed` for the error model).

    Attributes
    ----------
    mode:
        One of :data:`PRECISION_POLICY_MODES`.  ``"fp16"`` maps to the
        paper's FP16' tensor-core mode (half storage, single
        accumulation), which Fig. 13 shows converging where pure FP16
        stalls; ``"auto"`` ranks the reduced modes by modeled end-to-end
        throughput for the stack's submatrix dimension and picks the
        fastest whose a-priori error bound ``ε_mode · κ`` fits
        ``error_tolerance``, falling back to FP64.
    error_tolerance:
        Density error budget of the ``"auto"`` mode (and the reported
        bound's yardstick).  The default 1e-4 is an order looser than the
        engine's default ``eps_filter`` truncation, so auto actually
        engages FP32 for realistically conditioned stacks.
    refinement_threshold:
        Convergence threshold of the FP64 refinement pass (and the floor
        of the reduced solve's noise-floor threshold).
    max_refinement_iterations:
        Iteration cap of the refinement pass; a pass that fails to
        converge discards the reduced estimate and reruns the stack in
        FP64 — recovery is silent and exact, never raised.
    min_dimension:
        Submatrices smaller than this stay in FP64 (reduced-precision
        GEMM only pays off on large blocks; tiny blocks amplify the
        relative cast overhead).
    gap_floor:
        Assumed distance of μ to the nearest eigenvalue when the cheap
        Gershgorin bound on ``|λ|min`` of the shifted submatrix is
        uninformative — the generic case for Kohn–Sham matrices.  Enters
        the κ estimate as the denominator floor.
    """

    mode: str = "fp64"
    error_tolerance: float = 1e-4
    refinement_threshold: float = 1e-10
    max_refinement_iterations: int = 30
    min_dimension: int = 2
    gap_floor: float = 1e-2

    def __post_init__(self):
        self.validate()

    def validate(self) -> "PrecisionPolicy":
        """Check every field; returns ``self`` so calls can be chained."""
        if self.mode not in PRECISION_POLICY_MODES:
            raise ValueError(
                f"mode must be one of {PRECISION_POLICY_MODES}, got {self.mode!r}"
            )
        if self.error_tolerance <= 0:
            raise ValueError("error_tolerance must be positive")
        if self.refinement_threshold <= 0:
            raise ValueError("refinement_threshold must be positive")
        if self.max_refinement_iterations < 1:
            raise ValueError("max_refinement_iterations must be at least 1")
        if self.min_dimension < 1:
            raise ValueError("min_dimension must be at least 1")
        if self.gap_floor <= 0:
            raise ValueError("gap_floor must be positive")
        return self

    def replace(self, **changes) -> "PrecisionPolicy":
        """A validated copy with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def disabled(cls) -> "PrecisionPolicy":
        """The inactive full-FP64 policy (identical to the default)."""
        return cls(mode="fp64")

    @property
    def active(self) -> bool:
        """Whether any reduced-precision execution can occur.

        An inactive policy short-circuits to the unguarded pre-seam FP64
        execution paths, so it costs nothing.
        """
        return self.mode != "fp64"


@dataclasses.dataclass(frozen=True)
class EngineConfig:
    """Shared configuration of the submatrix engine.

    Attributes
    ----------
    engine:
        Execution engine: ``"naive"`` (reference kernels), ``"plan"``
        (cached vectorized extraction/scatter) or ``"batched"`` (plan plus
        bucketed 3-D stack evaluation).
    backend:
        ``"serial"``, ``"thread"`` or ``"process"`` parallelism for the
        per-submatrix solves.
    max_workers:
        Worker count for the parallel backends; ``None`` resolves to the
        machine's CPU count.
    bucket_pad:
        Padding granularity of the batched engine's buckets: an integer,
        ``None`` for exact-dimension buckets, or ``"auto"`` to pick from the
        measured dimension histogram.
    balance:
        Submatrix→rank assignment of the distributed pipeline:
        ``"chunks"`` (paper's greedy consecutive chunks), ``"stacks"``
        (bucket-aware LPT over whole stacks) or ``"round_robin"``.
    n_ranks:
        Simulated rank count of distributed sessions (1 = single process).
    eps_filter:
        Truncation threshold applied to the orthogonalized Kohn–Sham matrix
        by the density solver (CP2K's ``eps_filter``).
    temperature:
        Electronic temperature in Kelvin (0 uses the extended signum).
    spin_degeneracy:
        2 for closed-shell systems.
    plan_cache_size:
        Capacity of the session's private :class:`~repro.core.plan.PlanCache`.
    exact_transfers:
        Plan per-submatrix deduplicated transfers (exact packed-segment
        volumes) in distributed sessions; ``False`` uses the fast
        pattern-level planning.
    flop_constant:
        Cost of one per-submatrix solve as a multiple of n³ (used by load
        balancing and the machine model).
    overlap:
        Execute distributed density calculations arrival-driven through
        the :class:`~repro.core.overlap.OverlappedExchange` engine —
        every rank starts evaluating a bucket the moment its segments
        land instead of after the full initialization exchange.  Results
        are bitwise identical; the modeled hidden-exchange accounting
        lands on the result/trajectory statistics.
    prefetch_backend:
        Executor of the ``overlap=True`` trajectory step prefetch:
        ``"process"`` (default) prepares step *i+1* in a worker process so
        the preparation genuinely overlaps step *i*'s evaluation;
        ``"thread"`` prepares it on the prefetch thread (GIL-contended, the
        PR-7 behaviour).  Both are bitwise identical to the sync driver.
    resilience:
        The session's :class:`ResiliencePolicy` (rank retry/rebalance,
        kernel degradation, graceful fallback to the batched engine).  The
        default policy retries once, falls back to ``eigen`` on kernel
        non-convergence and degrades to the single-process engine on
        persistent pipeline failure; use
        :meth:`ResiliencePolicy.disabled` for the bare pre-resilience
        behaviour.
    precision:
        The session's :class:`PrecisionPolicy`.  The default FP64 policy
        is inactive — every path stays bitwise identical to the pre-seam
        engine; reduced modes run participating iterative sign kernels
        through the emulated reduced-precision backend with an FP64
        refinement pass, and the accounting lands on
        ``SubmatrixDFTResult.stacks_reduced`` /
        ``refinement_passes`` / ``precision_error_bound``.
    """

    engine: str = "plan"
    backend: str = "serial"
    max_workers: Optional[int] = None
    bucket_pad: Optional[Union[int, str]] = None
    balance: str = "chunks"
    n_ranks: int = 1
    eps_filter: float = 1e-5
    temperature: float = 0.0
    spin_degeneracy: float = 2.0
    plan_cache_size: int = 64
    exact_transfers: bool = True
    flop_constant: float = EIGENSOLVE_FLOP_CONSTANT
    overlap: bool = False
    prefetch_backend: str = "process"
    resilience: ResiliencePolicy = dataclasses.field(
        default_factory=ResiliencePolicy
    )
    precision: PrecisionPolicy = dataclasses.field(
        default_factory=PrecisionPolicy
    )

    def __post_init__(self):
        self.validate()

    def validate(self) -> "EngineConfig":
        """Check every field; returns ``self`` so calls can be chained."""
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if self.bucket_pad is not None:
            if isinstance(self.bucket_pad, str):
                if self.bucket_pad != "auto":
                    raise ValueError(
                        "bucket_pad must be a positive integer, None or 'auto'"
                    )
            elif int(self.bucket_pad) < 1:
                raise ValueError("bucket_pad must be a positive integer")
        if self.balance not in BALANCE_STRATEGIES:
            raise ValueError(
                f"balance must be one of {BALANCE_STRATEGIES}, got {self.balance!r}"
            )
        if self.n_ranks < 1:
            raise ValueError("n_ranks must be positive")
        if self.eps_filter < 0:
            raise ValueError("eps_filter must be non-negative")
        if self.temperature < 0:
            raise ValueError("temperature must be non-negative")
        if self.spin_degeneracy <= 0:
            raise ValueError("spin_degeneracy must be positive")
        if self.plan_cache_size < 1:
            raise ValueError("plan_cache_size must be at least 1")
        if self.flop_constant <= 0:
            raise ValueError("flop_constant must be positive")
        if self.prefetch_backend not in PREFETCH_BACKENDS:
            raise ValueError(
                f"prefetch_backend must be one of {PREFETCH_BACKENDS}, "
                f"got {self.prefetch_backend!r}"
            )
        if not isinstance(self.resilience, ResiliencePolicy):
            raise ValueError("resilience must be a ResiliencePolicy")
        self.resilience.validate()
        if not isinstance(self.precision, PrecisionPolicy):
            raise ValueError("precision must be a PrecisionPolicy")
        self.precision.validate()
        return self

    def resolved(self) -> "EngineConfig":
        """A copy with every deferred default filled in.

        Currently this resolves ``max_workers`` to the machine's CPU count.
        ``bucket_pad="auto"`` stays symbolic — it depends on the measured
        dimension histogram and is resolved per plan by
        :func:`repro.core.load_balance.resolve_bucket_pad`.
        """
        if self.max_workers is not None:
            return self
        return self.replace(max_workers=default_worker_count())

    def replace(self, **changes) -> "EngineConfig":
        """A validated copy with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    @property
    def uses_plan(self) -> bool:
        """Whether the vectorized plan engine is active (non-naive)."""
        return self.engine != "naive"
