"""One configuration object for the whole submatrix engine.

Every entry point of the reproduction — :class:`~repro.core.method.SubmatrixMethod`,
:class:`~repro.core.sign_dft.SubmatrixDFTSolver`,
:class:`~repro.core.runner.DistributedSubmatrixPipeline` and the
:class:`~repro.api.context.SubmatrixContext` session — used to re-thread its
own overlapping keyword arguments (engine, backend, worker count, bucket
padding, balancing strategy, rank count, filter threshold).
:class:`EngineConfig` collects them in one validated, immutable place; the
facades build their config from legacy kwargs, the session takes it
directly, and overlapping knobs can no longer drift apart between layers.

This module sits at the bottom of the dependency graph (nothing from
:mod:`repro.core` is imported here), so both the core facades and the
session layer can share its constants without import cycles.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

from repro.parallel.executor import default_worker_count

__all__ = [
    "EngineConfig",
    "ENGINES",
    "BACKENDS",
    "BALANCE_STRATEGIES",
    "EIGENSOLVE_FLOP_CONSTANT",
]

#: Execution engines of the submatrix method (see :mod:`repro.core.method`).
ENGINES = ("naive", "plan", "batched")

#: Parallel backends of :func:`repro.parallel.executor.map_parallel`.
BACKENDS = ("serial", "thread", "process")

#: Submatrix→rank assignment strategies of the distributed pipeline.
BALANCE_STRATEGIES = ("chunks", "stacks", "round_robin")

#: FLOPs of a dense symmetric eigendecomposition plus the two back
#: transformations Q·diag·Qᵀ, expressed as a multiple of n³.  dsyevd costs
#: roughly 4/3·n³ for the tridiagonal reduction plus ~4·n³ for the
#: divide-and-conquer back-transformation; forming Q Λ' Qᵀ adds ~4·n³.
EIGENSOLVE_FLOP_CONSTANT = 9.0


@dataclasses.dataclass(frozen=True)
class EngineConfig:
    """Shared configuration of the submatrix engine.

    Attributes
    ----------
    engine:
        Execution engine: ``"naive"`` (reference kernels), ``"plan"``
        (cached vectorized extraction/scatter) or ``"batched"`` (plan plus
        bucketed 3-D stack evaluation).
    backend:
        ``"serial"``, ``"thread"`` or ``"process"`` parallelism for the
        per-submatrix solves.
    max_workers:
        Worker count for the parallel backends; ``None`` resolves to the
        machine's CPU count.
    bucket_pad:
        Padding granularity of the batched engine's buckets: an integer,
        ``None`` for exact-dimension buckets, or ``"auto"`` to pick from the
        measured dimension histogram.
    balance:
        Submatrix→rank assignment of the distributed pipeline:
        ``"chunks"`` (paper's greedy consecutive chunks), ``"stacks"``
        (bucket-aware LPT over whole stacks) or ``"round_robin"``.
    n_ranks:
        Simulated rank count of distributed sessions (1 = single process).
    eps_filter:
        Truncation threshold applied to the orthogonalized Kohn–Sham matrix
        by the density solver (CP2K's ``eps_filter``).
    temperature:
        Electronic temperature in Kelvin (0 uses the extended signum).
    spin_degeneracy:
        2 for closed-shell systems.
    plan_cache_size:
        Capacity of the session's private :class:`~repro.core.plan.PlanCache`.
    exact_transfers:
        Plan per-submatrix deduplicated transfers (exact packed-segment
        volumes) in distributed sessions; ``False`` uses the fast
        pattern-level planning.
    flop_constant:
        Cost of one per-submatrix solve as a multiple of n³ (used by load
        balancing and the machine model).
    """

    engine: str = "plan"
    backend: str = "serial"
    max_workers: Optional[int] = None
    bucket_pad: Optional[Union[int, str]] = None
    balance: str = "chunks"
    n_ranks: int = 1
    eps_filter: float = 1e-5
    temperature: float = 0.0
    spin_degeneracy: float = 2.0
    plan_cache_size: int = 64
    exact_transfers: bool = True
    flop_constant: float = EIGENSOLVE_FLOP_CONSTANT

    def __post_init__(self):
        self.validate()

    def validate(self) -> "EngineConfig":
        """Check every field; returns ``self`` so calls can be chained."""
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if self.bucket_pad is not None:
            if isinstance(self.bucket_pad, str):
                if self.bucket_pad != "auto":
                    raise ValueError(
                        "bucket_pad must be a positive integer, None or 'auto'"
                    )
            elif int(self.bucket_pad) < 1:
                raise ValueError("bucket_pad must be a positive integer")
        if self.balance not in BALANCE_STRATEGIES:
            raise ValueError(
                f"balance must be one of {BALANCE_STRATEGIES}, got {self.balance!r}"
            )
        if self.n_ranks < 1:
            raise ValueError("n_ranks must be positive")
        if self.eps_filter < 0:
            raise ValueError("eps_filter must be non-negative")
        if self.temperature < 0:
            raise ValueError("temperature must be non-negative")
        if self.spin_degeneracy <= 0:
            raise ValueError("spin_degeneracy must be positive")
        if self.plan_cache_size < 1:
            raise ValueError("plan_cache_size must be at least 1")
        if self.flop_constant <= 0:
            raise ValueError("flop_constant must be positive")
        return self

    def resolved(self) -> "EngineConfig":
        """A copy with every deferred default filled in.

        Currently this resolves ``max_workers`` to the machine's CPU count.
        ``bucket_pad="auto"`` stays symbolic — it depends on the measured
        dimension histogram and is resolved per plan by
        :func:`repro.core.load_balance.resolve_bucket_pad`.
        """
        if self.max_workers is not None:
            return self
        return self.replace(max_workers=default_worker_count())

    def replace(self, **changes) -> "EngineConfig":
        """A validated copy with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    @property
    def uses_plan(self) -> bool:
        """Whether the vectorized plan engine is active (non-naive)."""
        return self.engine != "naive"
