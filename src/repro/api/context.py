"""The unified session API: one context owning plans, pools and pipelines.

The submatrix method pays off precisely in repeated-evaluation workloads —
the μ-bisection of the canonical ensemble, SCF/MD trajectories, cost sweeps
over many rank counts — yet before this module every entry point wired plan
caching, executor reuse, sharding and traffic logging ad hoc.
:class:`SubmatrixContext` is the session object that owns those shared
resources once:

* a private :class:`~repro.core.plan.PlanCache` (plans survive across every
  call through the session),
* one persistent executor (thread/process pool) reused by every parallel
  map instead of a pool per call,
* a cache of configured :class:`~repro.core.runner.DistributedSubmatrixPipeline`
  instances (sharded plans and transfer plans survive across repeated
  distributed runs),

and exposes the three workloads of the paper as methods:

* :meth:`SubmatrixContext.apply` — f(A) on a SciPy or block-sparse matrix
  through the engine selected by the session's :class:`EngineConfig`;
* :meth:`SubmatrixContext.density` — the DFT density-matrix driver
  (grand-canonical and canonical ensembles, optionally rank-sharded);
* :meth:`SubmatrixContext.distributed` — a :class:`DistributedSession`
  whose :meth:`~DistributedSession.run` executes the rank-sharded pipeline
  and reports its traffic.

The legacy classes (:class:`~repro.core.method.SubmatrixMethod`,
:class:`~repro.core.sign_dft.SubmatrixDFTSolver`) are thin facades over a
private context, so their results are bitwise identical to the session API.
"""

from __future__ import annotations

import contextlib
import functools
import threading
import time
import weakref
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.api.config import ENGINES, EngineConfig
from repro.api.results import SubmatrixMethodResult
from repro.core.batch import evaluate_batched
from repro.core.combination import ColumnGrouping
from repro.core.load_balance import resolve_bucket_pad
from repro.core.plan import (
    PATCH_DELTA_FRACTION,
    BlockSubmatrixPlan,
    PlanCache,
    SubmatrixPlan,
    block_plan,
    element_plan,
)
from repro.core.runner import (
    DistributedSubmatrixPipeline,
    PipelineResult,
    SubmatrixRunCost,
)
from repro.core.submatrix import (
    extract_block_submatrix,
    extract_submatrix,
    scatter_block_submatrix_result,
    scatter_submatrix_result,
)
from repro.dbcsr.block_matrix import BlockSparseMatrix
from repro.dbcsr.coo import CooBlockList
from repro.parallel.executor import executor_backend, make_executor, map_parallel
from repro.signfn.registry import BoundKernel, resolve_kernel

__all__ = ["SubmatrixContext", "DistributedSession", "REPLAN_MODES"]

_UNSET = object()

#: Upper bound on the context's pipeline cache.  Pipelines hold their
#: extraction plan, sharded index arrays and transfer plan, so unlike the
#: LRU-bounded PlanCache they must not accumulate without limit across
#: pattern/rank-count sweeps.
MAX_CACHED_PIPELINES = 32

#: Upper bound on the per-(grouping, sizes) anchor maps used by incremental
#: replanning (the most recent plan/pipeline per configuration).
MAX_REPLAN_ANCHORS = 16

#: Valid ``replan`` modes of the incremental-replan machinery:
#: ``"full"`` always rebuilds on a pattern change, ``"patch"`` always patches
#: the previous plan/pipeline when one exists, ``"auto"`` patches when the
#: block delta is small (≤ :data:`repro.core.plan.PATCH_DELTA_FRACTION`).
#: All three modes produce bitwise-identical results.
REPLAN_MODES = ("auto", "full", "patch")


# --------------------------------------------------------------------------- #
# shared validation helpers (used by the facades as well)
# --------------------------------------------------------------------------- #
def validate_groups(groups: Sequence[Sequence[int]], n_columns: int) -> None:
    """Check that ``groups`` is a partition of ``range(n_columns)``."""
    seen = np.zeros(n_columns, dtype=bool)
    for group in groups:
        if len(group) == 0:
            raise ValueError("column groups must be non-empty")
        for column in group:
            if not 0 <= column < n_columns:
                raise IndexError(f"column {column} out of range")
            if seen[column]:
                raise ValueError(f"column {column} appears in more than one group")
            seen[column] = True
    if not np.all(seen):
        missing = int(np.flatnonzero(~seen)[0])
        raise ValueError(f"column {missing} is not covered by any group")


def check_result_shape(dimension: int, evaluated: np.ndarray) -> None:
    expected = (dimension, dimension)
    if evaluated.shape != expected:
        raise ValueError(
            f"matrix function returned shape {evaluated.shape}, "
            f"expected {expected}"
        )


def _distribution_key(distribution) -> Optional[tuple]:
    """Content key of a block distribution (for the pipeline cache).

    Two distributions with the same grid shape and the same block→grid
    mappings assign identical owners, so their pipelines are
    interchangeable; keying by content lets trajectories with an explicit
    ``distribution`` reuse one pipeline across steps.
    """
    if distribution is None:
        return None
    return (
        distribution.n_block_rows,
        distribution.n_block_cols,
        distribution.grid.rows,
        distribution.grid.cols,
        distribution.row_distribution.tobytes(),
        distribution.col_distribution.tobytes(),
    )


def _tracked(method):
    """Run a context method as one tracked in-flight request.

    Applied to the leaf evaluation entry points only (``apply`` dispatches
    to a decorated method, so a request is counted exactly once).
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._request():
            return method(self, *args, **kwargs)

    return wrapper


def _assemble_csr(accumulator: dict, n: int) -> sp.csr_matrix:
    rows: List[int] = []
    cols: List[int] = []
    values: List[float] = []
    for column, column_store in accumulator.items():
        for row, value in column_store.items():
            rows.append(row)
            cols.append(column)
            values.append(value)
    return sp.coo_matrix((values, (rows, cols)), shape=(n, n)).tocsr()


class SubmatrixContext:
    """Session object of the submatrix engine.

    Parameters
    ----------
    config:
        The session's :class:`EngineConfig`; defaults to ``EngineConfig()``.
    plan_cache:
        Optional externally owned plan cache; by default the context creates
        a private cache of ``config.plan_cache_size`` plans.
    **overrides:
        Convenience field overrides applied to ``config``
        (``SubmatrixContext(engine="batched", backend="thread")``).

    The session is safe for concurrent use from multiple threads: the plan
    cache, pipeline cache, replan anchors and executor creation are guarded
    by one re-entrant lock, evaluation runs unlocked, and :meth:`close`
    refuses (with a :class:`RuntimeError`) to tear the session down while
    requests are in flight.  The serving layer (:mod:`repro.serve`) builds
    on exactly these guarantees.

    The context is a context manager; leaving the ``with`` block shuts down
    the persistent executor (plans stay cached):

    >>> with SubmatrixContext(EngineConfig(backend="thread")) as ctx:
    ...     ctx.apply(matrix, "eigen", mu=0.2)      # doctest: +SKIP
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        plan_cache: Optional[PlanCache] = None,
        **overrides,
    ):
        if config is None:
            config = EngineConfig()
        if not isinstance(config, EngineConfig):
            raise TypeError("config must be an EngineConfig")
        if overrides:
            config = config.replace(**overrides)
        self.config = config.validate()
        self.plan_cache = (
            plan_cache
            if plan_cache is not None
            else PlanCache(max_plans=config.plan_cache_size)
        )
        self._executor = None
        self._executors_created = 0
        self._pipelines: "OrderedDict[tuple, DistributedSubmatrixPipeline]" = (
            OrderedDict()
        )
        self._pipelines_built = 0
        self._pipelines_patched = 0
        # incremental-replan anchors: the most recent plan per
        # (sizes, grouping) and pipeline per configuration, the objects a
        # drifted pattern is patched *from*
        self._plan_anchors: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._pipeline_anchors: "OrderedDict[tuple, DistributedSubmatrixPipeline]" = (
            OrderedDict()
        )
        self._closed = False
        # session bookkeeping lock: guards executor creation, the plan /
        # pipeline / anchor maps, the in-flight counter and close().  The
        # evaluation work itself runs unlocked, so concurrent density/apply
        # calls from multiple threads genuinely overlap.
        self._lock = threading.RLock()
        self._in_flight = 0

    # ------------------------------------------------------------------ #
    # shared resources
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called on this context."""
        return self._closed

    def _check_open(self) -> None:
        """Reject work on a closed session with one clear error.

        Raising here (instead of letting a later call trip over the dead
        executor) gives every entry point — including serial configurations
        and the process-backend distributed path, which never touch the
        executor — the same :class:`RuntimeError`.
        """
        if self._closed:
            raise RuntimeError(
                "this SubmatrixContext has been closed; create a new "
                "context to continue working"
            )

    @property
    def executor(self):
        """The session's persistent executor (``None`` for serial configs).

        Created lazily on first use and reused by every subsequent parallel
        map through this context — one pool per session, not per call.
        """
        with self._lock:
            self._check_open()
            if self._executor is None:
                self._executor = make_executor(
                    self.config.backend, self.config.max_workers
                )
                if self._executor is not None:
                    self._executors_created += 1
                    # deterministic cleanup is close(); the finalizer only
                    # keeps abandoned sessions from pinning pool workers
                    # until exit
                    self._finalizer = weakref.finalize(
                        self, self._executor.shutdown, False
                    )
            return self._executor

    @property
    def in_flight(self) -> int:
        """Number of requests currently executing through this session."""
        with self._lock:
            return self._in_flight

    @contextlib.contextmanager
    def _request(self):
        """Track one in-flight request (rejecting work on a closed session).

        Every public evaluation entry point (``apply*``, ``density``,
        ``trajectory``, distributed ``run``) wraps its body in this guard so
        :meth:`close` can refuse to tear down a session that other threads
        are still using.
        """
        with self._lock:
            self._check_open()
            self._in_flight += 1
        try:
            yield
        finally:
            with self._lock:
                self._in_flight -= 1

    def close(self) -> None:
        """Shut down the persistent executor (idempotent when idle).

        Cached plans and pipelines are kept; any call through the session
        after a ``close()`` raises a :class:`RuntimeError`, so reuse
        requires a new context.  Safe to call any number of times and after
        the ``weakref.finalize`` shutdown path has already run (pool
        shutdown is idempotent and a fired finalizer detaches as a no-op).

        Closing a session while requests are in flight on other threads
        raises a :class:`RuntimeError` and leaves the session open — the
        running requests keep their executor and finish normally; call
        ``close()`` again once they have drained.
        """
        with self._lock:
            if self._in_flight:
                raise RuntimeError(
                    "cannot close this SubmatrixContext: "
                    f"{self._in_flight} request(s) still in flight; wait for "
                    "them to finish and call close() again"
                )
            executor, self._executor = self._executor, None
            self._closed = True
        if executor is not None:
            finalizer = getattr(self, "_finalizer", None)
            if finalizer is not None:
                finalizer.detach()
            executor.shutdown()

    def _rank_resources(self):
        """``(backend, executor)`` safe for shared-output per-rank tasks.

        The sharded pipeline's rank tasks scatter into one shared packed
        output buffer, so they can run serially or on the session's thread
        pool but never across a process boundary; a process-backend config
        (or a process-backed session pool) falls back to serial rank
        execution without ever creating the unusable pool.
        """
        if self.config.backend == "process":
            return "serial", None
        executor = self.executor
        if executor_backend(executor) == "process":
            return "serial", None
        return self.config.backend, executor

    def __enter__(self) -> "SubmatrixContext":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def stats(self) -> Dict[str, object]:
        """Session statistics: plan-cache hits/misses, pools, pipelines.

        ``pipelines_built`` counts actual constructions (a monotone
        counter, unaffected by cache eviction); ``pipelines_cached`` is the
        current cache size.
        """
        with self._lock:
            return {
                "plan_cache": dict(self.plan_cache.stats),
                "executors_created": self._executors_created,
                "pipelines_built": self._pipelines_built,
                "pipelines_patched": self._pipelines_patched,
                "pipelines_cached": len(self._pipelines),
            }

    def _map(self, function, items):
        """Map through the session's persistent executor."""
        return map_parallel(
            function,
            items,
            self.config.max_workers,
            self.config.backend,
            executor=self.executor,
        )

    def _resolve_engine(self, engine: Optional[str]) -> str:
        engine = engine or self.config.engine
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}")
        return engine

    # ------------------------------------------------------------------ #
    # incremental replanning
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_replan(replan: str) -> str:
        if replan not in REPLAN_MODES:
            raise ValueError(f"replan must be one of {REPLAN_MODES}")
        return replan

    @staticmethod
    def _trim_anchors(anchors: OrderedDict) -> None:
        while len(anchors) > MAX_REPLAN_ANCHORS:
            anchors.popitem(last=False)

    def block_plan_for(
        self,
        coo: CooBlockList,
        block_sizes: Sequence[int],
        column_groups: Sequence[Sequence[int]],
        replan: str = "full",
    ) -> BlockSubmatrixPlan:
        """Block extraction plan for ``coo``, optionally by incremental patch.

        With ``replan="full"`` this is a content-keyed
        :func:`~repro.core.plan.block_plan` cache lookup.  The other modes
        consult the session's anchor — the most recent plan served for the
        same block sizes and grouping:

        * an unchanged pattern reuses the anchor plan directly (counted as a
          plan-cache hit), which also keeps *patched* plans (cached under
          their delta key, not a content key) serving later value-only steps;
        * a changed pattern is patched from the anchor
          (:meth:`~repro.core.plan.PlanCache.patched_block_plan`) — always
          under ``"patch"``, and under ``"auto"`` only while the block delta
          stays small; otherwise, and when no anchor exists or the block grid
          changed, it falls back to a full content-keyed build.

        Every mode returns a plan whose pack/extract/scatter results are
        bitwise identical to a freshly built plan.
        """
        self._check_open()
        self._check_replan(replan)
        sizes = np.asarray(list(block_sizes), dtype=int)
        anchor_key = (
            sizes.tobytes(),
            tuple(map(tuple, column_groups)),
        )
        fingerprint = coo.fingerprint()
        with self._lock:
            if replan != "full":
                anchor = self._plan_anchors.get(anchor_key)
                if anchor is not None:
                    anchor_fingerprint, anchor_plan = anchor
                    if anchor_fingerprint == fingerprint:
                        self._plan_anchors.move_to_end(anchor_key)
                        return self.plan_cache.reuse(anchor_plan)
                    plan = self._try_patch_plan(anchor_plan, coo, replan)
                    if plan is not None:
                        self._plan_anchors[anchor_key] = (fingerprint, plan)
                        self._plan_anchors.move_to_end(anchor_key)
                        return plan
            plan = block_plan(coo, sizes, column_groups, cache=self.plan_cache)
            self._plan_anchors[anchor_key] = (fingerprint, plan)
            self._plan_anchors.move_to_end(anchor_key)
            self._trim_anchors(self._plan_anchors)
            return plan

    def _try_patch_plan(
        self, anchor_plan: BlockSubmatrixPlan, coo: CooBlockList, replan: str
    ) -> Optional[BlockSubmatrixPlan]:
        """Patched plan from the anchor, or ``None`` to fall back to full."""
        try:
            delta = anchor_plan.delta_to(coo)
            if replan == "auto" and delta.fraction_changed > PATCH_DELTA_FRACTION:
                return None
            return self.plan_cache.patched_block_plan(anchor_plan, coo, delta=delta)
        except ValueError:
            # e.g. a changed block grid — patching is impossible, rebuild
            return None

    def _bucket_pad_for(self, bound: BoundKernel, dimensions) -> Optional[int]:
        pad = resolve_bucket_pad(self.config.bucket_pad, dimensions)
        if pad is not None and not bound.matrix_function:
            raise ValueError(
                f"kernel {bound.name!r} is not a genuine matrix function; "
                "bucket padding requires exact-dimension buckets "
                "(bucket_pad=None)"
            )
        return pad

    # ------------------------------------------------------------------ #
    # f(A): element and block level
    # ------------------------------------------------------------------ #
    def apply(
        self,
        matrix: Union[sp.spmatrix, BlockSparseMatrix],
        function,
        column_groups: Optional[Sequence[Sequence[int]]] = None,
        engine: Optional[str] = None,
        batch_function: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        plan: Optional[SubmatrixPlan] = None,
        coo: Optional[CooBlockList] = None,
        **kernel_params,
    ) -> SubmatrixMethodResult:
        """Evaluate a matrix function on ``matrix`` through the session.

        Dispatches on the matrix type: SciPy sparse matrices run at element
        level (one submatrix per column group), block-sparse matrices at
        block level (one submatrix per block-column group).  ``function``
        may be a callable, a registered kernel name (``"eigen"``,
        ``"newton_schulz"``, …) or a :class:`~repro.signfn.registry.MatrixFunction`;
        ``**kernel_params`` (e.g. ``mu=0.2``) are forwarded to the kernel
        factory.
        """
        self._check_open()
        if isinstance(matrix, BlockSparseMatrix):
            return self.apply_blockwise(
                matrix,
                function,
                column_groups=column_groups,
                coo=coo,
                engine=engine,
                batch_function=batch_function,
                plan=plan,
                **kernel_params,
            )
        if sp.issparse(matrix):
            return self.apply_elementwise(
                matrix,
                function,
                column_groups=column_groups,
                engine=engine,
                batch_function=batch_function,
                plan=plan,
                **kernel_params,
            )
        raise TypeError(
            "apply expects a scipy.sparse matrix (element level) or a "
            f"BlockSparseMatrix (block level), got {type(matrix).__name__}"
        )

    @_tracked
    def apply_elementwise(
        self,
        matrix: sp.spmatrix,
        function,
        column_groups: Optional[Sequence[Sequence[int]]] = None,
        engine: Optional[str] = None,
        batch_function: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        plan: Optional[SubmatrixPlan] = None,
        **kernel_params,
    ) -> SubmatrixMethodResult:
        """Apply the matrix function column-by-column on a SciPy matrix."""
        self._check_open()
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError("the submatrix method requires a square matrix")
        bound = resolve_kernel(function, batch_function=batch_function, **kernel_params)
        engine = self._resolve_engine(engine)
        start = time.perf_counter()
        csc = matrix.tocsc()
        n = csc.shape[1]
        if column_groups is None:
            column_groups = [[c] for c in range(n)]
        validate_groups(column_groups, n)
        if engine == "naive":
            result, dimensions = self._apply_elementwise_naive(
                csc, column_groups, bound
            )
        else:
            if plan is None:
                plan = element_plan(csc, column_groups, cache=self.plan_cache)
            result, dimensions = self._apply_planned(csc, plan, engine, bound)
        wall = time.perf_counter() - start
        return SubmatrixMethodResult(
            result=result,
            submatrix_dimensions=dimensions,
            wall_time=wall,
            flop_estimate=float(sum(float(d) ** 3 for d in dimensions)),
        )

    def _apply_elementwise_naive(
        self,
        csc: sp.csc_matrix,
        column_groups: Sequence[Sequence[int]],
        bound: BoundKernel,
    ):
        """Reference path: per-call extraction and dict-of-dict accumulation."""

        def solve(group: Sequence[int]):
            submatrix = extract_submatrix(csc, group)
            evaluated = bound.function(submatrix.data)
            return submatrix, np.asarray(evaluated, dtype=float)

        solved = self._map(solve, list(column_groups))
        accumulator: dict = {}
        dimensions: List[int] = []
        for submatrix, evaluated in solved:
            check_result_shape(submatrix.dimension, evaluated)
            dimensions.append(submatrix.dimension)
            scatter_submatrix_result(accumulator, evaluated, submatrix, csc)
        return _assemble_csr(accumulator, csc.shape[1]), dimensions

    @_tracked
    def apply_blockwise(
        self,
        matrix: BlockSparseMatrix,
        function,
        column_groups: Optional[Sequence[Sequence[int]]] = None,
        coo: Optional[CooBlockList] = None,
        engine: Optional[str] = None,
        batch_function: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        plan: Optional[SubmatrixPlan] = None,
        **kernel_params,
    ) -> SubmatrixMethodResult:
        """Apply the matrix function block-column-wise on a DBCSR-style matrix."""
        self._check_open()
        bound = resolve_kernel(function, batch_function=batch_function, **kernel_params)
        engine = self._resolve_engine(engine)
        start = time.perf_counter()
        if coo is None:
            coo = CooBlockList.from_block_matrix(matrix)
        n_block_cols = matrix.n_block_cols
        if column_groups is None:
            column_groups = [[c] for c in range(n_block_cols)]
        validate_groups(column_groups, n_block_cols)
        if engine == "naive":
            result, dimensions = self._apply_blockwise_naive(
                matrix, column_groups, coo, bound
            )
        else:
            if plan is None:
                plan = block_plan(
                    coo,
                    matrix.row_block_sizes,
                    column_groups,
                    cache=self.plan_cache,
                )
            result, dimensions = self._apply_planned(matrix, plan, engine, bound)
        wall = time.perf_counter() - start
        return SubmatrixMethodResult(
            result=result,
            submatrix_dimensions=dimensions,
            wall_time=wall,
            flop_estimate=float(sum(float(d) ** 3 for d in dimensions)),
        )

    def _apply_blockwise_naive(
        self,
        matrix: BlockSparseMatrix,
        column_groups: Sequence[Sequence[int]],
        coo: CooBlockList,
        bound: BoundKernel,
    ):
        """Reference path: per-call block loops and copying scatter."""

        def solve(group: Sequence[int]):
            submatrix = extract_block_submatrix(matrix, group, coo)
            evaluated = bound.function(submatrix.data)
            return submatrix, np.asarray(evaluated, dtype=float)

        solved = self._map(solve, list(column_groups))
        result = BlockSparseMatrix(matrix.row_block_sizes, matrix.col_block_sizes)
        dimensions: List[int] = []
        for submatrix, evaluated in solved:
            check_result_shape(submatrix.dimension, evaluated)
            dimensions.append(submatrix.dimension)
            scatter_block_submatrix_result(result, evaluated, submatrix, coo)
        return result, dimensions

    def _apply_planned(
        self, matrix, plan: SubmatrixPlan, engine: str, bound: BoundKernel
    ):
        """Evaluate through a plan: pack, gather, evaluate, scatter, finalize."""
        packed = plan.pack(matrix)
        dimensions = plan.dimensions
        out = plan.new_output()
        if engine == "batched":
            # stacks are scattered straight into the output buffer, one
            # vectorized write per stack
            evaluate_batched(
                plan,
                packed,
                function=bound.function,
                batch_function=bound.batch_function,
                pad_to=self._bucket_pad_for(bound, dimensions),
                max_workers=self.config.max_workers,
                backend=self.config.backend,
                executor=self.executor,
                out=out,
            )
        else:

            def solve(group_index: int) -> np.ndarray:
                dense = plan.extract(packed, group_index)
                return np.asarray(bound.function(dense), dtype=float)

            evaluated = self._map(solve, list(range(plan.n_groups)))
            for group_index, f_submatrix in enumerate(evaluated):
                check_result_shape(dimensions[group_index], f_submatrix)
                plan.scatter(out, group_index, f_submatrix)
        return plan.finalize(out), list(dimensions)

    # ------------------------------------------------------------------ #
    # DFT density matrices
    # ------------------------------------------------------------------ #
    @_tracked
    def density(
        self,
        K,
        S,
        blocks,
        mu: Optional[float] = None,
        n_electrons: Optional[float] = None,
        solver: str = "eigen",
        grouping: Optional[ColumnGrouping] = None,
        mu_tolerance: float = 1e-9,
        max_mu_iterations: int = 200,
        ranks: Optional[int] = None,
        distribution=None,
        replan: str = "full",
        mu_bracket=None,
    ):
        """Density matrix from the Kohn–Sham and overlap matrices (Eq. 16).

        Exactly one of ``mu`` (grand-canonical) and ``n_electrons``
        (canonical) must be given.  With ``ranks > 1`` (or
        ``config.n_ranks > 1``) and the ``"eigen"`` solver, the
        eigendecomposition cache is built rank-sharded through
        :class:`~repro.core.runner.DistributedSubmatrixPipeline` and the
        μ-bisection runs on the sharded cache — bitwise identical to the
        single-process path.  ``replan`` and ``mu_bracket`` are the
        incremental-replan and warm-start hooks of the trajectory driver
        (see :func:`repro.api.density.compute_density`).
        """
        self._check_open()
        from repro.api.density import compute_density

        return compute_density(
            self,
            K,
            S,
            blocks,
            mu=mu,
            n_electrons=n_electrons,
            solver=solver,
            grouping=grouping,
            mu_tolerance=mu_tolerance,
            max_mu_iterations=max_mu_iterations,
            ranks=ranks,
            distribution=distribution,
            replan=replan,
            mu_bracket=mu_bracket,
        )

    @_tracked
    def observables(
        self,
        K,
        S,
        blocks,
        observables=("density",),
        mu: Optional[float] = None,
        n_electrons: Optional[float] = None,
        solver: str = "eigen",
        grouping: Optional[ColumnGrouping] = None,
        mu_tolerance: float = 1e-9,
        max_mu_iterations: int = 200,
        ranks: Optional[int] = None,
        distribution=None,
        replan: str = "full",
        mu_bracket=None,
        observable_params=None,
    ):
        """Several observables from **one** decomposition pass (Sec. IV-F/G).

        ``observables`` names the registered observables to assemble
        (:func:`repro.api.observables.available_observables`); all of them
        share a single sharded/batched submatrix decomposition — requesting
        ``("density", "pdos", "energy_weighted_density")`` costs one
        eigendecomposition per stack, exactly like :meth:`density` alone.
        ``observable_params`` optionally maps an observable name to its
        assembly parameters (e.g. ``{"pdos": {"broadening": 0.05}}``).
        Returns an :class:`~repro.api.results.ObservableBundle`; all other
        arguments behave as in :meth:`density`.
        """
        self._check_open()
        from repro.api.observables import compute_observables

        return compute_observables(
            self,
            K,
            S,
            blocks,
            observables=observables,
            mu=mu,
            n_electrons=n_electrons,
            solver=solver,
            grouping=grouping,
            mu_tolerance=mu_tolerance,
            max_mu_iterations=max_mu_iterations,
            ranks=ranks,
            distribution=distribution,
            replan=replan,
            mu_bracket=mu_bracket,
            observable_params=observable_params,
        )

    @_tracked
    def trajectory(
        self,
        steps,
        blocks,
        mu=None,
        n_electrons=None,
        solver: str = "eigen",
        grouping: Optional[ColumnGrouping] = None,
        mu_tolerance: float = 1e-9,
        max_mu_iterations: int = 200,
        ranks: Optional[int] = None,
        distribution=None,
        n_steps: Optional[int] = None,
        replan: str = "auto",
        warm_start_mu: bool = False,
        checkpoint=None,
        observables=None,
        observable_params=None,
        on_step=None,
        prefetch: Optional[bool] = None,
    ):
        """Density matrices along an SCF/MD trajectory through this session.

        ``steps`` is a sequence of ``(K, S)`` pairs or a callback
        ``step(index) -> (K, S) | None``; every step's density matrix is
        computed exactly like a single-shot :meth:`density` call, but the
        steps share this session's plan cache, sharded pipelines and
        executor — value-only steps (unchanged sparsity pattern, detected
        via the plan cache's content hash) skip all planning, and with
        ``replan="auto"`` (default) or ``"patch"`` a *drifted* pattern
        patches the previous step's plans instead of rebuilding them.
        ``warm_start_mu=True`` seeds each canonical step's μ-bisection from
        the previous step's μ (an opt-in that trades the bitwise identity of
        μ for fewer bisection iterations).  ``checkpoint=`` persists every
        completed step to a directory and resumes an interrupted trajectory
        from its first unsaved step, bitwise identical to an uninterrupted
        run (see :class:`~repro.api.checkpoint.TrajectoryCheckpoint`).
        ``observables=`` requests additional observables per step (each step
        then yields an :class:`~repro.api.results.ObservableBundle` sharing
        one decomposition pass), ``on_step`` is a per-completed-step callback
        ``on_step(index, result)`` (the SCF driver's feedback hook) and
        ``prefetch=False`` disables the overlap engine's step prefetch for
        step sequences where step ``i+1`` depends on step ``i``'s result.
        Returns a :class:`~repro.api.trajectory.TrajectoryResult` with the
        per-step results and a :class:`~repro.api.trajectory.TrajectoryStats`
        reuse record.  See :func:`repro.api.trajectory.run_trajectory`.
        """
        self._check_open()
        from repro.api.trajectory import run_trajectory

        return run_trajectory(
            self,
            steps,
            blocks,
            mu=mu,
            n_electrons=n_electrons,
            solver=solver,
            grouping=grouping,
            mu_tolerance=mu_tolerance,
            max_mu_iterations=max_mu_iterations,
            ranks=ranks,
            distribution=distribution,
            n_steps=n_steps,
            replan=replan,
            warm_start_mu=warm_start_mu,
            checkpoint=checkpoint,
            observables=observables,
            observable_params=observable_params,
            on_step=on_step,
            prefetch=prefetch,
        )

    # ------------------------------------------------------------------ #
    # distributed sessions
    # ------------------------------------------------------------------ #
    def distributed(
        self,
        n_ranks: Optional[int] = None,
        grouping: Optional[ColumnGrouping] = None,
        distribution=None,
    ) -> "DistributedSession":
        """A rank-sharded session over this context's resources.

        ``context.distributed(ranks).run(matrix, "eigen", mu=0.2)`` executes
        the sharded pipeline; pipelines (and their sharded/transfer plans)
        are cached on the context per (pattern, grouping, rank count).
        """
        self._check_open()
        n_ranks = self.config.n_ranks if n_ranks is None else int(n_ranks)
        return DistributedSession(
            self, n_ranks, grouping=grouping, distribution=distribution
        )

    def pipeline(
        self,
        pattern: Union[sp.spmatrix, CooBlockList],
        block_sizes: Sequence[int],
        n_ranks: Optional[int] = None,
        grouping: Optional[ColumnGrouping] = None,
        distribution=None,
        bucket_pad=_UNSET,
        replan: str = "full",
    ) -> DistributedSubmatrixPipeline:
        """Fetch (or build and cache) a configured sharded pipeline.

        ``bucket_pad`` is taken from the session config unless explicitly
        passed (the density driver passes ``bucket_pad=None`` to force
        exact-dimension buckets for its eigendecomposition cache).

        With ``replan="patch"`` (always) or ``"auto"`` (small block deltas),
        a cache miss for a drifted pattern is served by patching the most
        recently used pipeline of the same configuration
        (:meth:`~repro.core.runner.DistributedSubmatrixPipeline.patch`)
        instead of rebuilding plans, shards and transfer plan from scratch;
        the patched pipeline is cached like a built one.  Results are
        bitwise identical in every mode.
        """
        self._check_open()
        self._check_replan(replan)
        coo = (
            pattern
            if isinstance(pattern, CooBlockList)
            else CooBlockList.from_pattern(pattern)
        )
        n_ranks = self.config.n_ranks if n_ranks is None else int(n_ranks)
        pad = self.config.bucket_pad if bucket_pad is _UNSET else bucket_pad
        sizes = np.asarray(list(block_sizes), dtype=int)
        grouping_key = (
            tuple(map(tuple, grouping.groups)) if grouping is not None else None
        )
        configuration_key = (
            sizes.tobytes(),
            n_ranks,
            grouping_key,
            self.config.balance,
            pad,
            self.config.exact_transfers,
            _distribution_key(distribution),
        )
        key = (coo.fingerprint(),) + configuration_key
        with self._lock:
            cached = self._pipelines.get(key)
            if cached is not None:
                self._pipelines.move_to_end(key)
                self._pipeline_anchors[configuration_key] = cached
                self._pipeline_anchors.move_to_end(configuration_key)
                self._trim_anchors(self._pipeline_anchors)
                return cached
            pipeline = None
            if replan != "full":
                anchor = self._pipeline_anchors.get(configuration_key)
                if anchor is not None:
                    pipeline = self._try_patch_pipeline(anchor, coo, replan)
            if pipeline is None:
                pipeline = DistributedSubmatrixPipeline(
                    coo,
                    sizes,
                    n_ranks,
                    grouping=grouping,
                    distribution=distribution,
                    balance=self.config.balance,
                    bucket_pad=pad,
                    flop_constant=self.config.flop_constant,
                    plan_cache=self.plan_cache,
                    exact_transfers=self.config.exact_transfers,
                )
                self._pipelines_built += 1
            self._pipelines[key] = pipeline
            while len(self._pipelines) > MAX_CACHED_PIPELINES:
                self._pipelines.popitem(last=False)
            self._pipeline_anchors[configuration_key] = pipeline
            self._pipeline_anchors.move_to_end(configuration_key)
            self._trim_anchors(self._pipeline_anchors)
            return pipeline

    def _try_patch_pipeline(
        self,
        anchor: DistributedSubmatrixPipeline,
        coo: CooBlockList,
        replan: str,
    ) -> Optional[DistributedSubmatrixPipeline]:
        """Patched pipeline from the anchor, or ``None`` to build fresh."""
        try:
            anchor.prepare()
            delta = anchor.plan.delta_to(coo)
            if replan == "auto" and delta.fraction_changed > PATCH_DELTA_FRACTION:
                return None
            patched = anchor.patch(coo, plan_cache=self.plan_cache, delta=delta)
        except ValueError:
            return None
        self._pipelines_patched += 1
        return patched


class DistributedSession:
    """Rank-sharded execution bound to a :class:`SubmatrixContext`.

    Obtained via :meth:`SubmatrixContext.distributed`; wraps the
    :class:`~repro.core.runner.DistributedSubmatrixPipeline` with the
    session's configuration, plan cache and persistent executor.
    """

    def __init__(
        self,
        context: SubmatrixContext,
        n_ranks: int,
        grouping: Optional[ColumnGrouping] = None,
        distribution=None,
    ):
        if n_ranks < 1:
            raise ValueError("n_ranks must be positive")
        self.context = context
        self.n_ranks = int(n_ranks)
        self.grouping = grouping
        self.distribution = distribution

    def pipeline(
        self,
        pattern: Union[sp.spmatrix, CooBlockList],
        block_sizes: Sequence[int],
    ) -> DistributedSubmatrixPipeline:
        """The configured (and context-cached) pipeline for ``pattern``."""
        return self.context.pipeline(
            pattern,
            block_sizes,
            n_ranks=self.n_ranks,
            grouping=self.grouping,
            distribution=self.distribution,
        )

    def run(
        self,
        matrix: BlockSparseMatrix,
        function,
        coo: Optional[CooBlockList] = None,
        batch_function: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        pad_value: float = 1.0,
        **kernel_params,
    ) -> PipelineResult:
        """Evaluate f on every submatrix through the sharded pipeline.

        ``function`` accepts the same specs as :meth:`SubmatrixContext.apply`
        (callable, registered kernel name, :class:`MatrixFunction`).  The
        per-rank tasks share the packed output buffer, so the session's
        executor is reused only for the serial and thread backends; a
        process-backend context falls back to serial rank execution.
        """
        if not isinstance(matrix, BlockSparseMatrix):
            raise TypeError("distributed runs operate on a BlockSparseMatrix")
        with self.context._request():
            bound = resolve_kernel(
                function, batch_function=batch_function, **kernel_params
            )
            if coo is None:
                coo = CooBlockList.from_block_matrix(matrix)
            pipeline = self.pipeline(coo, matrix.col_block_sizes)
            config = self.context.config
            backend, executor = self.context._rank_resources()
            # the pipeline's own resolve_kernel passes a BoundKernel through
            # unchanged, so the spec is resolved exactly once
            return pipeline.run(
                matrix,
                function=bound,
                pad_value=pad_value,
                max_workers=config.max_workers,
                backend=backend,
                executor=executor,
            )

    def cost(
        self,
        pattern: Union[sp.spmatrix, CooBlockList],
        block_sizes: Sequence[int],
        machine,
        cores_per_rank: int = 1,
    ) -> SubmatrixRunCost:
        """Simulated run cost of this session's pipeline on ``machine``."""
        return self.pipeline(pattern, block_sizes).cost(
            machine, cores_per_rank=cores_per_rank
        )

    def density(self, K, S, blocks, **kwargs):
        """Rank-sharded density matrix (see :meth:`SubmatrixContext.density`).

        The session's rank count, grouping and distribution are applied
        unless overridden in ``kwargs``.
        """
        kwargs.setdefault("ranks", self.n_ranks)
        kwargs.setdefault("grouping", self.grouping)
        kwargs.setdefault("distribution", self.distribution)
        return self.context.density(K, S, blocks, **kwargs)

    def observables(self, K, S, blocks, observables=("density",), **kwargs):
        """Rank-sharded observables (see :meth:`SubmatrixContext.observables`).

        The session's rank count, grouping and distribution are applied
        unless overridden in ``kwargs``.
        """
        kwargs.setdefault("ranks", self.n_ranks)
        kwargs.setdefault("grouping", self.grouping)
        kwargs.setdefault("distribution", self.distribution)
        return self.context.observables(
            K, S, blocks, observables=observables, **kwargs
        )

    def trajectory(self, steps, blocks, **kwargs):
        """Rank-sharded trajectory (see :meth:`SubmatrixContext.trajectory`).

        The session's rank count, grouping and distribution are applied
        unless overridden in ``kwargs``.
        """
        kwargs.setdefault("ranks", self.n_ranks)
        kwargs.setdefault("grouping", self.grouping)
        kwargs.setdefault("distribution", self.distribution)
        return self.context.trajectory(steps, blocks, **kwargs)
