"""Trajectory checkpointing: persist per-step results, resume after a crash.

A :class:`TrajectoryCheckpoint` is a directory holding one ``.npz`` file per
completed trajectory step plus a small ``trajectory.json`` manifest.  The
trajectory driver (:func:`repro.api.trajectory.run_trajectory`) saves every
step as soon as it completes and, on a later run pointed at the same
directory, *loads* the saved steps instead of recomputing them — so a
trajectory killed at step k resumes at step k, and the resumed run's
results are **bitwise identical** to an uninterrupted one:

* the density matrices and every scalar are stored as float64 NumPy arrays
  (``.npz`` round-trips them bit-exactly, no text formatting involved);
* the previous step's μ — the seed of a warm-started μ-bisection — and the
  previous pattern fingerprint are restored from the loaded result, so the
  first recomputed step sees exactly the state it would have seen had the
  earlier steps just run.

Step files are written atomically (temporary file + ``os.replace``), so a
crash *during* a save leaves either the complete previous state or the
complete new state — never a torn file.  The manifest records a caller
``signature`` of the trajectory's parameters; resuming with different
parameters (a different solver, ensemble or step count) raises
:class:`CheckpointError` instead of silently splicing incompatible steps.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.api.results import ObservableBundle, SubmatrixDFTResult

__all__ = ["TrajectoryCheckpoint", "CheckpointError"]

_MANIFEST = "trajectory.json"
_VERSION = 1

#: Key prefix of per-observable arrays inside a step ``.npz``
#: (``obs_<name>__<suffix>``); the density observable keeps the checkpoint's
#: native flat layout so density-only files stay readable by older code.
_OBS_PREFIX = "obs_"
_OBS_SEPARATOR = "__"


class CheckpointError(RuntimeError):
    """A checkpoint directory is unusable for the requested trajectory.

    Raised when the manifest's parameter signature does not match the
    resuming trajectory's, or when a step file is missing or corrupt.
    """


def _float_or_nan(value: Optional[float]) -> float:
    return float("nan") if value is None else float(value)


def _nan_to_none(value: float) -> Optional[float]:
    return None if np.isnan(value) else float(value)


class TrajectoryCheckpoint:
    """Directory-backed store of per-step trajectory results.

    Parameters
    ----------
    path:
        Checkpoint directory; created (including parents) on first use.
        An existing directory is resumed from.
    """

    def __init__(self, path):
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self._signature_json: Optional[str] = None
        manifest = self._read_manifest()
        if manifest is not None:
            self._signature_json = json.dumps(
                manifest.get("signature"), sort_keys=True
            )

    # ------------------------------------------------------------------ #
    # manifest
    # ------------------------------------------------------------------ #
    def _manifest_path(self) -> Path:
        return self.path / _MANIFEST

    def _read_manifest(self) -> Optional[Dict]:
        manifest_path = self._manifest_path()
        if not manifest_path.exists():
            return None
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError) as error:
            raise CheckpointError(
                f"unreadable checkpoint manifest {manifest_path}: {error!r}"
            ) from error

    def _write_manifest(self, signature) -> None:
        payload = {"version": _VERSION, "signature": signature}
        self._atomic_write_text(
            self._manifest_path(), json.dumps(payload, sort_keys=True, indent=2)
        )

    def _atomic_write_text(self, target: Path, text: str) -> None:
        descriptor, tmp_name = tempfile.mkstemp(
            dir=str(self.path), prefix=target.name, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, target)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise

    def ensure_signature(self, signature) -> None:
        """Bind this checkpoint to one trajectory parameter signature.

        The first call records ``signature`` (any JSON-serializable value)
        in the manifest; later calls — including from a resuming process —
        must present an equal signature or :class:`CheckpointError` is
        raised, so saved steps are never spliced into a trajectory with
        different parameters.
        """
        incoming = json.dumps(signature, sort_keys=True)
        if self._signature_json is None:
            self._write_manifest(signature)
            self._signature_json = incoming
            return
        if incoming != self._signature_json:
            raise CheckpointError(
                f"checkpoint {self.path} was written by a trajectory with "
                f"different parameters (saved signature "
                f"{self._signature_json}, requested {incoming}); use a "
                "fresh checkpoint directory"
            )

    # ------------------------------------------------------------------ #
    # steps
    # ------------------------------------------------------------------ #
    def _step_path(self, index: int) -> Path:
        return self.path / f"step_{int(index):05d}.npz"

    def has_step(self, index: int) -> bool:
        """Whether step ``index`` has a completed, saved result."""
        return self._step_path(index).exists()

    @property
    def n_saved_steps(self) -> int:
        """Number of contiguously saved steps starting at step 0."""
        count = 0
        while self.has_step(count):
            count += 1
        return count

    def save_step(self, index: int, result) -> None:
        """Persist one step's result (atomic; safe against crashes).

        Accepts a plain :class:`SubmatrixDFTResult` or an
        :class:`~repro.api.results.ObservableBundle`.  A bundle is stored
        in the checkpoint's native density layout plus an ``observables``
        name array and per-observable ``obs_<name>__<suffix>`` arrays
        (serialized through the observable's ``checkpoint_save`` hook), so
        a density-only step file is byte-layout identical to one written
        before multi-observable trajectories existed.
        """
        bundle: Optional[ObservableBundle] = None
        if isinstance(result, ObservableBundle):
            bundle = result
            result = bundle.results["density"]
        ortho = sp.csr_matrix(result.density_ortho)
        arrays = {
            "density_ao": np.asarray(result.density_ao, dtype=np.float64),
            "ortho_data": np.asarray(ortho.data, dtype=np.float64),
            "ortho_indices": np.asarray(ortho.indices, dtype=np.int64),
            "ortho_indptr": np.asarray(ortho.indptr, dtype=np.int64),
            "ortho_shape": np.asarray(ortho.shape, dtype=np.int64),
            "dimensions": np.asarray(
                result.submatrix_dimensions, dtype=np.int64
            ),
            "scalars": np.asarray(
                [
                    result.mu,
                    result.n_electrons,
                    result.band_energy,
                    result.eps_filter,
                    result.wall_time,
                    _float_or_nan(result.segment_fetch_bytes),
                    _float_or_nan(result.block_fetch_bytes),
                    _float_or_nan(result.precision_error_bound),
                ],
                dtype=np.float64,
            ),
            "counters": np.asarray(
                [
                    result.mu_iterations,
                    result.n_ranks,
                    result.retries,
                    result.reassigned_stacks,
                    result.kernel_fallbacks,
                    int(result.degraded),
                    result.stacks_reduced,
                    result.refinement_passes,
                ],
                dtype=np.int64,
            ),
            "fingerprint": np.asarray(result.pattern_fingerprint or ""),
        }
        if bundle is not None:
            from repro.api.observables import get_observable

            arrays["observables"] = np.asarray(list(bundle.observables))
            arrays["bundle_counters"] = np.asarray(
                [int(bundle.stack_decompositions)], dtype=np.int64
            )
            for name in bundle.observables:
                if name == "density":
                    continue
                observable = get_observable(name)
                if observable.checkpoint_save is None:
                    raise CheckpointError(
                        f"observable {name!r} has no checkpoint_save hook; "
                        "it cannot be persisted in a trajectory checkpoint"
                    )
                for suffix, array in observable.checkpoint_save(
                    bundle.results[name]
                ).items():
                    arrays[f"{_OBS_PREFIX}{name}{_OBS_SEPARATOR}{suffix}"] = (
                        np.asarray(array)
                    )
        target = self._step_path(index)
        descriptor, tmp_name = tempfile.mkstemp(
            dir=str(self.path), prefix=target.name, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                np.savez(handle, **arrays)
            os.replace(tmp_name, target)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise

    def load_step(self, index: int):
        """Reconstruct one step's result, bit-exact to what was saved.

        Step files written with an ``observables`` name array come back as
        :class:`~repro.api.results.ObservableBundle` objects (each
        observable deserialized through its ``checkpoint_load`` hook);
        files without it — every file written before multi-observable
        trajectories existed — come back as plain
        :class:`SubmatrixDFTResult` objects exactly as before.
        """
        step_path = self._step_path(index)
        if not step_path.exists():
            raise CheckpointError(
                f"checkpoint {self.path} has no saved step {index}"
            )
        observable_names = None
        observable_arrays: Dict[str, Dict[str, np.ndarray]] = {}
        stack_decompositions = 0
        try:
            with np.load(step_path, allow_pickle=False) as data:
                density_ao = np.array(data["density_ao"], dtype=np.float64)
                ortho = sp.csr_matrix(
                    (
                        np.array(data["ortho_data"]),
                        np.array(data["ortho_indices"]),
                        np.array(data["ortho_indptr"]),
                    ),
                    shape=tuple(int(n) for n in data["ortho_shape"]),
                )
                dimensions = [int(d) for d in data["dimensions"]]
                scalars = np.array(data["scalars"], dtype=np.float64)
                counters = np.array(data["counters"], dtype=np.int64)
                fingerprint = str(data["fingerprint"])
                if "observables" in data.files:
                    observable_names = tuple(str(n) for n in data["observables"])
                    bundle_counters = np.array(
                        data["bundle_counters"], dtype=np.int64
                    )
                    stack_decompositions = int(bundle_counters[0])
                    for key in data.files:
                        if not key.startswith(_OBS_PREFIX):
                            continue
                        name, _, suffix = key[len(_OBS_PREFIX) :].partition(
                            _OBS_SEPARATOR
                        )
                        observable_arrays.setdefault(name, {})[suffix] = (
                            np.array(data[key])
                        )
        except (OSError, ValueError, KeyError) as error:
            raise CheckpointError(
                f"corrupt checkpoint step file {step_path}: {error!r}"
            ) from error
        density = SubmatrixDFTResult(
            density_ao=density_ao,
            density_ortho=ortho,
            mu=float(scalars[0]),
            n_electrons=float(scalars[1]),
            band_energy=float(scalars[2]),
            submatrix_dimensions=dimensions,
            mu_iterations=int(counters[0]),
            eps_filter=float(scalars[3]),
            wall_time=float(scalars[4]),
            n_ranks=int(counters[1]),
            pattern_fingerprint=fingerprint or None,
            segment_fetch_bytes=_nan_to_none(scalars[5]),
            block_fetch_bytes=_nan_to_none(scalars[6]),
            retries=int(counters[2]),
            reassigned_stacks=int(counters[3]),
            kernel_fallbacks=int(counters[4]),
            degraded=bool(counters[5]),
            # steps saved before the mixed-precision counters existed load
            # with the (correct) zero defaults
            stacks_reduced=int(counters[6]) if counters.size > 6 else 0,
            refinement_passes=int(counters[7]) if counters.size > 7 else 0,
            precision_error_bound=(
                _nan_to_none(scalars[7]) if scalars.size > 7 else None
            ),
        )
        if observable_names is None:
            return density
        from repro.api.observables import UnknownObservableError, get_observable

        results = {}
        for name in observable_names:
            if name == "density":
                results[name] = density
                continue
            try:
                observable = get_observable(name)
            except UnknownObservableError as error:
                raise CheckpointError(
                    f"checkpoint step {step_path} holds observable {name!r}, "
                    f"which is not registered in this process: {error}"
                ) from error
            if observable.checkpoint_load is None:
                raise CheckpointError(
                    f"observable {name!r} has no checkpoint_load hook; "
                    f"step file {step_path} cannot be restored"
                )
            results[name] = observable.checkpoint_load(
                observable_arrays.get(name, {})
            )
        return ObservableBundle(
            results=results,
            observables=observable_names,
            stack_decompositions=stack_decompositions,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TrajectoryCheckpoint(path={str(self.path)!r}, "
            f"n_saved_steps={self.n_saved_steps})"
        )
