"""Clustering algorithms used to combine block columns into submatrices.

The paper proposes two heuristics for deciding which block columns to combine
into a single submatrix (Sec. IV-C2):

* k-means clustering of the real-space positions of the atoms/molecules
  behind each block column (the paper uses scikit-learn; here a from-scratch
  k-means++ / Lloyd implementation is provided), and
* graph partitioning of the block-sparsity graph (the paper uses METIS
  multilevel k-way partitioning; here a greedy BFS-growing partitioner with
  boundary refinement stands in).

Both produce balanced groups of spatially/graph-adjacent block columns, which
is all the estimated-speedup analysis (Fig. 5) requires.
"""

from repro.clustering.kmeans import KMeansResult, kmeans
from repro.clustering.graph_partition import GraphPartitionResult, partition_graph

__all__ = [
    "KMeansResult",
    "kmeans",
    "GraphPartitionResult",
    "partition_graph",
]
