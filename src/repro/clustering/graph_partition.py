"""Graph partitioning of the block-sparsity graph (METIS stand-in).

The second heuristic of Sec. IV-C2 represents the block-sparsity pattern of
the orthogonalized Kohn–Sham matrix as a graph — block columns are nodes,
non-zero off-diagonal blocks are edges — and partitions it into k parts such
that strongly connected block columns end up in the same part and are
combined into a single submatrix.  The paper uses METIS multilevel k-way
partitioning with total-communication-volume minimisation.

METIS is not available offline; this module provides a deterministic greedy
partitioner: parts are grown one at a time by BFS from a peripheral seed
node, preferring frontier nodes with the most edges into the growing part
(a Kernighan–Lin-flavoured gain function), followed by a boundary-refinement
pass that moves nodes between adjacent parts when this reduces the edge cut
without violating the balance constraint.  This reproduces the property that
matters for the estimated speedup S of Fig. 5: balanced clusters of
graph-adjacent block columns.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Dict, List, Optional, Sequence, Set

import numpy as np
import scipy.sparse as sp

__all__ = ["GraphPartitionResult", "partition_graph", "edge_cut"]


@dataclasses.dataclass
class GraphPartitionResult:
    """Result of a k-way graph partitioning.

    Attributes
    ----------
    labels:
        Part index per node.
    n_parts:
        Number of parts.
    edge_cut:
        Number of graph edges whose endpoints are in different parts.
    part_sizes:
        Number of nodes per part.
    """

    labels: np.ndarray
    n_parts: int
    edge_cut: int
    part_sizes: np.ndarray


def _adjacency_sets(pattern: sp.spmatrix) -> List[Set[int]]:
    """Adjacency sets from a (possibly non-symmetric) sparsity pattern."""
    n = pattern.shape[0]
    if pattern.shape[0] != pattern.shape[1]:
        raise ValueError("the block-sparsity pattern must be square")
    coo = pattern.tocoo()
    adjacency: List[Set[int]] = [set() for _ in range(n)]
    for i, j in zip(coo.row, coo.col):
        if i != j:
            adjacency[int(i)].add(int(j))
            adjacency[int(j)].add(int(i))
    return adjacency


def edge_cut(pattern: sp.spmatrix, labels: Sequence[int]) -> int:
    """Number of edges of the sparsity graph crossing part boundaries."""
    labels = np.asarray(labels, dtype=int)
    adjacency = _adjacency_sets(pattern)
    cut = 0
    for node, neighbors in enumerate(adjacency):
        for neighbor in neighbors:
            if neighbor > node and labels[neighbor] != labels[node]:
                cut += 1
    return cut


def _grow_part(
    seed: int,
    target_size: int,
    adjacency: List[Set[int]],
    unassigned: Set[int],
) -> Set[int]:
    """Grow one part from ``seed`` by greedy gain-driven BFS."""
    part: Set[int] = {seed}
    unassigned.discard(seed)
    # max-heap on (edges into part), tie-broken by node id for determinism
    frontier: List[tuple] = []
    counted: Dict[int, int] = {}

    def push_neighbors(node: int) -> None:
        for neighbor in adjacency[node]:
            if neighbor in unassigned:
                counted[neighbor] = counted.get(neighbor, 0) + 1
                heapq.heappush(frontier, (-counted[neighbor], neighbor))

    push_neighbors(seed)
    while len(part) < target_size and unassigned:
        candidate = None
        while frontier:
            negative_gain, node = heapq.heappop(frontier)
            if node in unassigned and -negative_gain == counted.get(node, 0):
                candidate = node
                break
        if candidate is None:
            # disconnected remainder: pick the smallest unassigned node
            candidate = min(unassigned)
        part.add(candidate)
        unassigned.discard(candidate)
        push_neighbors(candidate)
    return part


def _refine(
    labels: np.ndarray,
    adjacency: List[Set[int]],
    max_size: int,
    passes: int = 2,
) -> np.ndarray:
    """Boundary refinement: move nodes to a neighbouring part when that
    strictly reduces the edge cut and keeps all parts within ``max_size``."""
    labels = labels.copy()
    part_sizes: Dict[int, int] = {}
    for label in labels:
        part_sizes[int(label)] = part_sizes.get(int(label), 0) + 1
    n = len(labels)
    for _ in range(passes):
        moved = 0
        for node in range(n):
            current = int(labels[node])
            # connectivity of this node to each adjacent part
            connectivity: Dict[int, int] = {}
            for neighbor in adjacency[node]:
                label = int(labels[neighbor])
                connectivity[label] = connectivity.get(label, 0) + 1
            internal = connectivity.get(current, 0)
            best_part, best_gain = current, 0
            for part, edges in connectivity.items():
                if part == current:
                    continue
                if part_sizes.get(part, 0) + 1 > max_size:
                    continue
                if part_sizes[current] <= 1:
                    continue
                gain = edges - internal
                if gain > best_gain or (gain == best_gain and gain > 0 and part < best_part):
                    best_part, best_gain = part, gain
            if best_part != current and best_gain > 0:
                labels[node] = best_part
                part_sizes[current] -= 1
                part_sizes[best_part] = part_sizes.get(best_part, 0) + 1
                moved += 1
        if moved == 0:
            break
    return labels


def partition_graph(
    pattern: sp.spmatrix,
    n_parts: int,
    balance_tolerance: float = 1.10,
    refine_passes: int = 2,
    seed_order: Optional[Sequence[int]] = None,
) -> GraphPartitionResult:
    """Partition the block-sparsity graph into ``n_parts`` balanced parts.

    Parameters
    ----------
    pattern:
        Square (block) sparsity pattern; off-diagonal non-zeros are edges.
    n_parts:
        Number of parts (1 <= n_parts <= number of nodes).
    balance_tolerance:
        Maximum allowed part size as a multiple of the ideal size
        ceil(n / n_parts).
    refine_passes:
        Number of boundary-refinement sweeps.
    seed_order:
        Optional explicit order in which part seeds are chosen (mainly for
        testing); by default the lowest-degree unassigned node seeds each
        part, which tends to start parts at the periphery of the graph.
    """
    n = pattern.shape[0]
    if not 1 <= n_parts <= n:
        raise ValueError(f"n_parts must be in [1, {n}], got {n_parts}")
    adjacency = _adjacency_sets(pattern)
    base_size = -(-n // n_parts)  # ceil
    max_size = max(base_size, int(np.floor(base_size * balance_tolerance)))

    labels = np.full(n, -1, dtype=int)
    unassigned: Set[int] = set(range(n))
    seeds_iter = iter(seed_order) if seed_order is not None else None
    for part in range(n_parts):
        if not unassigned:
            break
        remaining_parts = n_parts - part
        target = -(-len(unassigned) // remaining_parts)
        if seeds_iter is not None:
            seed = next(seeds_iter)
            if seed not in unassigned:
                seed = min(unassigned)
        else:
            seed = min(unassigned, key=lambda node: (len(adjacency[node] & unassigned), node))
        members = _grow_part(seed, target, adjacency, unassigned)
        for node in members:
            labels[node] = part
    # safety: assign any stragglers to the smallest part
    if np.any(labels < 0):  # pragma: no cover - defensive
        for node in np.flatnonzero(labels < 0):
            sizes = np.bincount(labels[labels >= 0], minlength=n_parts)
            labels[node] = int(np.argmin(sizes))

    if n_parts > 1 and refine_passes > 0:
        labels = _refine(labels, adjacency, max_size, refine_passes)

    cut = edge_cut(pattern, labels)
    part_sizes = np.bincount(labels, minlength=n_parts)
    return GraphPartitionResult(
        labels=labels, n_parts=n_parts, edge_cut=cut, part_sizes=part_sizes
    )
