"""k-means clustering (k-means++ seeding plus Lloyd iterations).

Used for the real-space heuristic of Sec. IV-C2: block columns whose
molecules are close in real space should be combined into one submatrix.  The
paper uses scikit-learn's implementation; since scikit-learn is not available
offline, this module implements the same algorithm (Lloyd's iterations with
k-means++ seeding and several restarts) from scratch on top of NumPy.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

__all__ = ["KMeansResult", "kmeans"]


@dataclasses.dataclass
class KMeansResult:
    """Result of a k-means clustering.

    Attributes
    ----------
    labels:
        Cluster index per input point.
    centers:
        Cluster centroids, shape (k, dims).
    inertia:
        Sum of squared distances of points to their assigned centroid.
    iterations:
        Lloyd iterations performed by the best restart.
    """

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    iterations: int

    @property
    def n_clusters(self) -> int:
        return self.centers.shape[0]


def _kmeans_plus_plus(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids proportional to D²."""
    n = points.shape[0]
    centers = np.empty((k, points.shape[1]))
    first = rng.integers(n)
    centers[0] = points[first]
    closest_sq = np.sum((points - centers[0]) ** 2, axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # all remaining points coincide with chosen centers
            centers[i:] = points[rng.integers(n, size=k - i)]
            break
        probabilities = closest_sq / total
        choice = rng.choice(n, p=probabilities)
        centers[i] = points[choice]
        distance_sq = np.sum((points - centers[i]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, distance_sq)
    return centers


def _lloyd(
    points: np.ndarray,
    centers: np.ndarray,
    max_iterations: int,
    tolerance: float,
) -> tuple:
    """Lloyd iterations from the given initial centers."""
    k = centers.shape[0]
    labels = np.zeros(points.shape[0], dtype=int)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        # assignment step
        distances = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
        labels = np.argmin(distances, axis=1)
        # update step
        new_centers = centers.copy()
        for cluster in range(k):
            members = points[labels == cluster]
            if len(members):
                new_centers[cluster] = members.mean(axis=0)
        shift = float(np.max(np.linalg.norm(new_centers - centers, axis=1)))
        centers = new_centers
        if shift <= tolerance:
            break
    distances = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
    labels = np.argmin(distances, axis=1)
    inertia = float(np.sum(np.min(distances, axis=1) ** 2))
    return labels, centers, inertia, iterations


def kmeans(
    points: np.ndarray,
    n_clusters: int,
    seed: Optional[int] = 0,
    n_init: int = 4,
    max_iterations: int = 300,
    tolerance: float = 1e-6,
) -> KMeansResult:
    """Cluster ``points`` into ``n_clusters`` groups.

    Parameters
    ----------
    points:
        (n, dims) array of coordinates.
    n_clusters:
        Number of clusters k (1 <= k <= n).
    seed:
        Seed for the k-means++ initialisation; ``None`` uses fresh entropy.
    n_init:
        Number of restarts; the restart with the lowest inertia wins.
    max_iterations:
        Maximum Lloyd iterations per restart.
    tolerance:
        Convergence tolerance on the largest centroid movement.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError("points must be a 2D array")
    n = points.shape[0]
    if not 1 <= n_clusters <= n:
        raise ValueError(f"n_clusters must be in [1, {n}], got {n_clusters}")
    rng = np.random.default_rng(seed)
    best: Optional[KMeansResult] = None
    for _ in range(max(1, n_init)):
        centers = _kmeans_plus_plus(points, n_clusters, rng)
        labels, centers, inertia, iterations = _lloyd(
            points, centers, max_iterations, tolerance
        )
        if best is None or inertia < best.inertia:
            best = KMeansResult(
                labels=labels, centers=centers, inertia=inertia, iterations=iterations
            )
    assert best is not None
    return best
