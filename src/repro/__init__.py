"""repro — reproduction of the submatrix method for approximate matrix function
evaluation in linear-scaling DFT (Lass, Schade, Kühne, Plessl; SC 2020).

The package is organised into substrates and the core contribution:

``repro.chem``
    Synthetic liquid-water systems, model Kohn–Sham / overlap matrix builders,
    Löwdin orthogonalization and dense reference density-matrix solvers.
``repro.dbcsr``
    A block-compressed sparse matrix library modelled after CP2K's libDBCSR,
    including a 2D process-grid distribution and a Cannon-style distributed
    multiplication.
``repro.parallel``
    A simulated communicator with traffic accounting, a machine model used to
    convert FLOP/byte counts into simulated wall-clock times, and thread/process
    executors for genuinely parallel submatrix solves.
``repro.signfn``
    Matrix sign function algorithms (Newton–Schulz, higher-order Padé,
    eigendecomposition-based) and inverse p-th roots.
``repro.clustering``
    k-means and graph partitioning used to combine block columns into
    submatrices.
``repro.core``
    The submatrix method itself: submatrix extraction and result scatter-back,
    column grouping, block-transfer planning, load balancing, the DFT
    density-matrix driver (grand-canonical and canonical) and the distributed
    run cost model.
``repro.accel``
    Emulated low/mixed-precision sign iterations and a GPU/FPGA performance
    model.
``repro.analysis``
    Sparsity statistics and evaluation metrics.
"""

from repro.version import __version__

__all__ = ["__version__"]
