"""repro — reproduction of the submatrix method for approximate matrix function
evaluation in linear-scaling DFT (Lass, Schade, Kühne, Plessl; SC 2020).

The package is organised into substrates, the core contribution, and a
unified session API on top:

``repro.api``
    The session API: :class:`~repro.api.config.EngineConfig` (one validated
    configuration for engine, backend, workers, bucket padding, balancing,
    ranks and filtering), the :class:`~repro.signfn.registry.MatrixFunction`
    kernel registry, and :class:`~repro.api.context.SubmatrixContext` — the
    session that owns the plan cache, the persistent worker pool and the
    sharded pipelines, exposing ``apply`` / ``density`` / ``distributed``.
``repro.chem``
    Synthetic liquid-water systems, model Kohn–Sham / overlap matrix builders,
    Löwdin orthogonalization and dense reference density-matrix solvers.
``repro.dbcsr``
    A block-compressed sparse matrix library modelled after CP2K's libDBCSR,
    including a 2D process-grid distribution and a Cannon-style distributed
    multiplication.
``repro.parallel``
    A simulated communicator with traffic accounting, a machine model used to
    convert FLOP/byte counts into simulated wall-clock times, and thread/process
    executors for genuinely parallel submatrix solves.
``repro.signfn``
    Matrix sign function algorithms (Newton–Schulz, higher-order Padé,
    eigendecomposition-based), inverse p-th roots, and the named-kernel
    registry behind every solver string.
``repro.clustering``
    k-means and graph partitioning used to combine block columns into
    submatrices.
``repro.core``
    The submatrix method itself: submatrix extraction and result scatter-back,
    column grouping, block-transfer planning, load balancing, the DFT
    density-matrix driver (grand-canonical and canonical) and the distributed
    run cost model.
``repro.accel``
    Emulated low/mixed-precision sign iterations and a GPU/FPGA performance
    model (``PrecisionMode``/``PRECISION_MODES``,
    ``model_sign_algorithm_performance`` — re-exported here).
``repro.backend``
    The array-backend seam: the :class:`~repro.backend.base.ArrayBackend`
    protocol with a bitwise-identical NumPy default and an emulated
    reduced-precision backend, plus the mixed-precision execution behind
    :class:`~repro.api.config.PrecisionPolicy`.
``repro.serve``
    Density-as-a-service: a multi-tenant in-process server pooling session
    contexts over one shared plan cache, with cross-request micro-batching,
    admission control and per-tenant metrics.
``repro.analysis``
    Sparsity statistics and evaluation metrics.

The most convenient entry point is the session API, re-exported here:

>>> import repro
>>> ctx = repro.SubmatrixContext(repro.EngineConfig(engine="batched"))
>>> result = ctx.apply(matrix, "eigen", mu=0.2)              # doctest: +SKIP
"""

from repro.version import __version__
from repro.accel import (
    PRECISION_MODES,
    PrecisionMode,
    model_sign_algorithm_performance,
)
from repro.api import (
    BoundKernel,
    DistributedSession,
    EngineConfig,
    MatrixFunction,
    PrecisionPolicy,
    ResiliencePolicy,
    SubmatrixContext,
    SubmatrixDFTResult,
    SubmatrixMethodResult,
    TrajectoryCheckpoint,
    TrajectoryResult,
    TrajectoryStats,
    UnknownKernelError,
    available_kernels,
    get_kernel,
    register_callable,
    register_kernel,
    resolve_kernel,
)
from repro.backend import (
    ArrayBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.serve import (
    AdmissionPolicy,
    DensityService,
    ServiceOverloadError,
)

__all__ = [
    "AdmissionPolicy",
    "DensityService",
    "ServiceOverloadError",
    "__version__",
    "EngineConfig",
    "ResiliencePolicy",
    "PrecisionPolicy",
    "PrecisionMode",
    "PRECISION_MODES",
    "model_sign_algorithm_performance",
    "ArrayBackend",
    "get_backend",
    "register_backend",
    "available_backends",
    "SubmatrixContext",
    "DistributedSession",
    "SubmatrixMethodResult",
    "SubmatrixDFTResult",
    "TrajectoryCheckpoint",
    "TrajectoryResult",
    "TrajectoryStats",
    "MatrixFunction",
    "BoundKernel",
    "UnknownKernelError",
    "register_kernel",
    "register_callable",
    "get_kernel",
    "available_kernels",
    "resolve_kernel",
]
