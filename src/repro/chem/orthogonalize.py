"""Löwdin symmetric orthogonalization.

The paper's implementation (Sec. IV-F) symmetrises the argument of the sign
function by multiplying the Kohn–Sham matrix from both sides with S^{-1/2}
(Löwdin orthogonalization) instead of using the unsymmetric product S^{-1}K:

    K̃ = S^{-1/2} K S^{-1/2}
    D = 1/2 S^{-1/2} (I - sign(K̃ - μ I)) S^{-1/2}            (Eq. 16)

This module provides the dense reference S^{-1/2} (via symmetric
eigendecomposition) as well as a sparse, filtered orthogonalized Kohn–Sham
matrix for use by the sparse solvers.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np
import scipy.sparse as sp

__all__ = [
    "loewdin_inverse_sqrt",
    "orthogonalized_ks",
]


def loewdin_inverse_sqrt(
    S: Union[np.ndarray, sp.spmatrix], min_eigenvalue: float = 1e-10
) -> np.ndarray:
    """Compute S^{-1/2} of a symmetric positive-definite overlap matrix.

    Parameters
    ----------
    S:
        Overlap matrix, dense or sparse (densified internally — the overlap
        matrices of the reproduction's benchmark systems are small enough for
        the dense reference path; the large-system analyses are performed at
        the sparsity-pattern level and never call this function).
    min_eigenvalue:
        Eigenvalues below this threshold trigger an error; the overlap of a
        physically meaningful, non-redundant basis is strictly positive
        definite.

    Returns
    -------
    numpy.ndarray
        Dense S^{-1/2}.
    """
    S_dense = S.toarray() if sp.issparse(S) else np.asarray(S, dtype=float)
    if S_dense.shape[0] != S_dense.shape[1]:
        raise ValueError("overlap matrix must be square")
    if not np.allclose(S_dense, S_dense.T, atol=1e-10):
        raise ValueError("overlap matrix must be symmetric")
    eigenvalues, eigenvectors = np.linalg.eigh(S_dense)
    if eigenvalues.min() < min_eigenvalue:
        raise ValueError(
            f"overlap matrix is not positive definite enough "
            f"(min eigenvalue {eigenvalues.min():.3e} < {min_eigenvalue:.0e})"
        )
    inv_sqrt = eigenvectors @ np.diag(1.0 / np.sqrt(eigenvalues)) @ eigenvectors.T
    return 0.5 * (inv_sqrt + inv_sqrt.T)


def orthogonalized_ks(
    K: Union[np.ndarray, sp.spmatrix],
    S: Union[np.ndarray, sp.spmatrix],
    eps_filter: float = 0.0,
) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Symmetrically orthogonalized Kohn–Sham matrix K̃ = S^{-1/2} K S^{-1/2}.

    Parameters
    ----------
    K, S:
        Kohn–Sham and overlap matrices (dense or sparse).
    eps_filter:
        CP2K-style element truncation threshold applied to K̃.  Elements with
        absolute value below this threshold are dropped, which is what
        establishes the sparsity exploited by both the Newton–Schulz baseline
        and the submatrix method.  ``0.0`` keeps everything.

    Returns
    -------
    (K_ortho, S_inv_sqrt):
        The filtered orthogonalized Kohn–Sham matrix as CSR and the dense
        S^{-1/2} used to build it (needed again to back-transform the density
        matrix, Eq. 16).
    """
    S_inv_sqrt = loewdin_inverse_sqrt(S)
    K_dense = K.toarray() if sp.issparse(K) else np.asarray(K, dtype=float)
    K_ortho = S_inv_sqrt @ K_dense @ S_inv_sqrt
    K_ortho = 0.5 * (K_ortho + K_ortho.T)
    if eps_filter > 0.0:
        K_ortho = np.where(np.abs(K_ortho) >= eps_filter, K_ortho, 0.0)
    return sp.csr_matrix(K_ortho), S_inv_sqrt
