"""Model Kohn–Sham / overlap matrix builder.

The reproduction cannot run CP2K/Quickstep, so this module generates matrices
that share every property the submatrix method and the paper's evaluation
depend on:

* **block structure** — one DBCSR block per molecule, with block sizes given
  by the basis set (6 for SZV water, 23 for DZVP water);
* **distance decay** — matrix elements between basis functions on different
  molecules decay exponentially with the interatomic distance, so applying a
  filter threshold ``eps_filter`` produces the banded block-sparsity pattern
  of Fig. 2 and the linear-scaling saturation of Fig. 4;
* **spectrum** — each molecule contributes a fixed set of occupied and
  virtual levels (4 doubly-occupied valence orbitals for water), broadened
  into bands by the intermolecular couplings, with a clear gap in which the
  chemical potential μ can be placed;
* **symmetry / definiteness** — K is symmetric and S is symmetric positive
  definite, as required by the Löwdin orthogonalization (Eq. 16) and by the
  eigendecomposition-based sign evaluation (Sec. IV-F).

All energies are in eV and all lengths in Å.  Construction is fully
vectorised over atom pairs grouped by element pair, so systems with tens of
thousands of atoms can be assembled in seconds.
"""

from __future__ import annotations

import dataclasses
import math
import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.chem.atoms import System
from repro.chem.basis import BasisSet, SZV

__all__ = [
    "HamiltonianModel",
    "BlockStructure",
    "MatrixPair",
    "block_structure",
    "cutoff_radius",
    "build_matrices",
    "build_block_pattern",
]

#: Occupied molecular-orbital-like levels per water molecule (eV).
#: Four doubly-occupied valence orbitals => 8 valence electrons per molecule,
#: matching H2O with GTH pseudopotentials (O: 6, H: 1 each).
DEFAULT_OCCUPIED_LEVELS = (-25.5, -13.5, -12.2, -11.0)

#: Range (eV) over which the virtual levels of a molecule are spread.
DEFAULT_VIRTUAL_RANGE = (4.5, 24.0)


@dataclasses.dataclass(frozen=True)
class HamiltonianModel:
    """Parameters of the distance-decay model Hamiltonian.

    Parameters
    ----------
    basis:
        Basis set providing per-element block sizes and decay lengths.
    occupied_levels:
        Per-molecule occupied orbital energies (eV).  Their number sets the
        number of occupied orbitals per molecule.
    virtual_range:
        (low, high) energies (eV) over which the remaining per-molecule levels
        are distributed.
    coupling_amplitude:
        Prefactor (eV) of the intermolecular Hamiltonian couplings.
    overlap_amplitude:
        Prefactor (dimensionless) of the intermolecular overlap elements.
        Must be small enough to keep S diagonally dominant and hence positive
        definite.
    seed:
        Seed for the deterministic per-block orthogonal transformations.
    """

    basis: BasisSet = SZV
    occupied_levels: Tuple[float, ...] = DEFAULT_OCCUPIED_LEVELS
    virtual_range: Tuple[float, float] = DEFAULT_VIRTUAL_RANGE
    coupling_amplitude: float = 2.0
    overlap_amplitude: float = 0.08
    seed: int = 7

    @property
    def n_occupied_per_molecule(self) -> int:
        """Number of occupied orbitals contributed by each molecule."""
        return len(self.occupied_levels)

    def molecular_levels(self, n_functions: int) -> np.ndarray:
        """Per-molecule orbital energies for a block of ``n_functions``."""
        n_occ = self.n_occupied_per_molecule
        if n_functions < n_occ:
            raise ValueError(
                f"molecule block of size {n_functions} cannot host "
                f"{n_occ} occupied orbitals"
            )
        n_virt = n_functions - n_occ
        if n_virt == 0:
            virtual = np.empty(0)
        else:
            virtual = np.linspace(self.virtual_range[0], self.virtual_range[1], n_virt)
        return np.concatenate([np.asarray(self.occupied_levels, dtype=float), virtual])

    def homo_lumo_gap_center(self) -> float:
        """Energy (eV) in the middle of the molecular HOMO–LUMO gap.

        A convenient default for the chemical potential μ of grand-canonical
        calculations; the intermolecular couplings broaden the levels by well
        under half the molecular gap, so this value always lies in the gap of
        the full system.
        """
        return 0.5 * (max(self.occupied_levels) + self.virtual_range[0])


@dataclasses.dataclass(frozen=True)
class BlockStructure:
    """Block (molecule) structure of the matrices for a given system/basis.

    Attributes
    ----------
    block_sizes:
        Number of basis functions per molecule block.
    block_starts:
        Offset of each block in the global basis-function index, with a final
        sentinel equal to the total dimension.
    atom_offsets:
        Global basis-function offset of each atom.
    n_basis:
        Total number of basis functions.
    """

    block_sizes: np.ndarray
    block_starts: np.ndarray
    atom_offsets: np.ndarray
    n_basis: int

    @property
    def n_blocks(self) -> int:
        return len(self.block_sizes)

    def block_of_function(self, index: int) -> int:
        """Block (molecule) index owning global basis function ``index``."""
        if index < 0 or index >= self.n_basis:
            raise IndexError(f"basis function index {index} out of range")
        return int(np.searchsorted(self.block_starts, index, side="right") - 1)


@dataclasses.dataclass
class MatrixPair:
    """Kohn–Sham and overlap matrices plus their block structure."""

    K: sp.csr_matrix
    S: sp.csr_matrix
    blocks: BlockStructure
    model: HamiltonianModel

    @property
    def n_basis(self) -> int:
        return self.blocks.n_basis


def block_structure(system: System, basis: BasisSet) -> BlockStructure:
    """Compute the molecule-block structure for ``system`` under ``basis``."""
    n_mol = system.n_molecules
    block_sizes = np.zeros(n_mol, dtype=int)
    atom_offsets = np.zeros(system.n_atoms, dtype=int)
    # first pass: sizes
    per_atom = np.array(
        [basis.functions_for(sym) for sym in system.symbols], dtype=int
    )
    for m in range(n_mol):
        idx = system.atoms_in_molecule(m)
        block_sizes[m] = per_atom[idx].sum()
    block_starts = np.concatenate(([0], np.cumsum(block_sizes)))
    # second pass: atom offsets (within-block order follows atom order)
    for m in range(n_mol):
        idx = system.atoms_in_molecule(m)
        offsets = np.concatenate(([0], np.cumsum(per_atom[idx])[:-1]))
        atom_offsets[idx] = block_starts[m] + offsets
    return BlockStructure(
        block_sizes=block_sizes,
        block_starts=block_starts,
        atom_offsets=atom_offsets,
        n_basis=int(block_starts[-1]),
    )


def cutoff_radius(model: HamiltonianModel, eps: float) -> float:
    """Distance (Å) beyond which intermolecular couplings fall below ``eps``.

    This is the finite interaction radius R_max of Sec. III-C of the paper:
    for a fixed filter threshold the number of basis-function centres inside
    this radius — and hence the submatrix dimension — is independent of the
    overall system size.
    """
    if eps <= 0:
        raise ValueError("eps must be positive")
    if eps >= model.coupling_amplitude:
        return 0.0
    return model.basis.decay_length * math.log(model.coupling_amplitude / eps)


def _element_vector(symbol: str, basis: BasisSet, rng: np.random.Generator) -> np.ndarray:
    """Deterministic per-element coupling vector over that atom's functions.

    The intermolecular coupling block between atoms a and b is the outer
    product of these vectors scaled by the distance decay; the vectors are
    normalised so the largest coupling equals the model amplitude.
    """
    n = basis.functions_for(symbol)
    # deterministic: derive from a child generator keyed by the element
    # symbol.  ``hash()`` on strings is salted per process (PYTHONHASHSEED),
    # which silently made every Hamiltonian — and every benchmark built on
    # one — differ between runs; crc32 is stable across processes.
    child = np.random.default_rng(
        zlib.crc32(f"{symbol}/{basis.name}".encode("utf-8"))
    )
    v = 0.5 + child.random(n)
    v /= np.max(np.abs(v))
    return v


def _molecular_block(
    n_functions: int, model: HamiltonianModel, rng: np.random.Generator
) -> np.ndarray:
    """Intramolecular Hamiltonian block with the model's designed spectrum."""
    levels = model.molecular_levels(n_functions)
    # fixed orthogonal transformation so the block is dense in the AO basis
    m = rng.normal(size=(n_functions, n_functions))
    q, r = np.linalg.qr(m)
    q *= np.sign(np.diag(r))
    return (q * levels) @ q.T


def build_matrices(
    system: System,
    model: Optional[HamiltonianModel] = None,
    basis: Optional[BasisSet] = None,
    eps_pair: float = 1e-12,
) -> MatrixPair:
    """Assemble the Kohn–Sham matrix K and the overlap matrix S.

    Parameters
    ----------
    system:
        Atomistic system (molecule assignment defines the block structure).
    model:
        Hamiltonian model; if omitted one is created from ``basis``.
    basis:
        Convenience parameter to select the basis set when ``model`` is not
        given.
    eps_pair:
        Intermolecular couplings weaker than this (eV) are not generated at
        all.  This is *not* the CP2K ``eps_filter`` — it only bounds the
        construction cost; filtering of the orthogonalized Kohn–Sham matrix is
        applied separately (see :mod:`repro.dbcsr.filtering`).

    Returns
    -------
    MatrixPair
        ``K`` and ``S`` as ``scipy.sparse.csr_matrix`` plus block structure.
    """
    if model is None:
        model = HamiltonianModel(basis=basis if basis is not None else SZV)
    elif basis is not None and basis is not model.basis:
        raise ValueError("pass either model or basis, not conflicting values")
    basis = model.basis
    blocks = block_structure(system, basis)
    n = blocks.n_basis
    rng = np.random.default_rng(model.seed)

    rows: List[np.ndarray] = []
    cols: List[np.ndarray] = []
    k_vals: List[np.ndarray] = []
    s_vals: List[np.ndarray] = []

    # ------------------------------------------------------------------ #
    # intramolecular blocks: identical for molecules of identical size
    # ------------------------------------------------------------------ #
    unique_sizes = np.unique(blocks.block_sizes)
    intra_blocks: Dict[int, np.ndarray] = {
        int(size): _molecular_block(int(size), model, rng) for size in unique_sizes
    }
    for size in unique_sizes:
        size = int(size)
        mols = np.flatnonzero(blocks.block_sizes == size)
        if mols.size == 0:
            continue
        block = intra_blocks[size]
        local_r, local_c = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
        starts = blocks.block_starts[mols]
        r = (starts[:, None, None] + local_r[None, :, :]).ravel()
        c = (starts[:, None, None] + local_c[None, :, :]).ravel()
        rows.append(r)
        cols.append(c)
        k_vals.append(np.tile(block.ravel(), mols.size))
        # intramolecular overlap: orthonormal within the molecule
        s_vals.append(np.tile(np.eye(size).ravel(), mols.size))

    # ------------------------------------------------------------------ #
    # intermolecular couplings: outer-product blocks with distance decay
    # ------------------------------------------------------------------ #
    r_cut = cutoff_radius(model, eps_pair)
    if r_cut > 0.0:
        i_atoms, j_atoms, dists = system.neighbor_pairs(r_cut)
        mol_i = system.molecule_index[i_atoms]
        mol_j = system.molecule_index[j_atoms]
        inter = mol_i != mol_j
        i_atoms, j_atoms, dists = i_atoms[inter], j_atoms[inter], dists[inter]

        symbols = np.array(system.symbols)
        element_vectors = {
            sym: _element_vector(sym, basis, rng) for sym in np.unique(symbols)
        }
        decay_k = basis.decay_length
        decay_s = basis.overlap_decay_length

        pair_elements = list(
            {(symbols[a], symbols[b]) for a, b in zip(i_atoms, j_atoms)}
        )
        pair_elements.sort()
        for ea, eb in pair_elements:
            mask = (symbols[i_atoms] == ea) & (symbols[j_atoms] == eb)
            if not np.any(mask):
                continue
            pa = i_atoms[mask]
            pb = j_atoms[mask]
            pr = dists[mask]
            va = element_vectors[ea]
            vb = element_vectors[eb]
            na, nb = va.size, vb.size
            outer = np.outer(va, vb)  # (na, nb)
            k_scale = -model.coupling_amplitude * np.exp(-pr / decay_k)
            s_scale = model.overlap_amplitude * np.exp(-pr / decay_s)
            # values for all pairs at once: (npairs, na, nb)
            k_block = k_scale[:, None, None] * outer[None, :, :]
            s_block = s_scale[:, None, None] * outer[None, :, :]
            off_a = blocks.atom_offsets[pa]
            off_b = blocks.atom_offsets[pb]
            local_r = np.arange(na)
            local_c = np.arange(nb)
            r = np.broadcast_to(
                (off_a[:, None, None] + local_r[None, :, None]), k_block.shape
            ).ravel()
            c = np.broadcast_to(
                (off_b[:, None, None] + local_c[None, None, :]), k_block.shape
            ).ravel()
            # upper block (a, b)
            rows.append(r)
            cols.append(c)
            k_vals.append(k_block.ravel())
            s_vals.append(s_block.ravel())
            # symmetric counterpart (b, a)
            rows.append(c)
            cols.append(r)
            k_vals.append(k_block.ravel())
            s_vals.append(s_block.ravel())

    row_arr = np.concatenate(rows)
    col_arr = np.concatenate(cols)
    k_arr = np.concatenate(k_vals)
    s_arr = np.concatenate(s_vals)

    K = sp.coo_matrix((k_arr, (row_arr, col_arr)), shape=(n, n)).tocsr()
    S = sp.coo_matrix((s_arr, (row_arr, col_arr)), shape=(n, n)).tocsr()
    K.sum_duplicates()
    S.sum_duplicates()
    # remove explicitly stored zeros from the identity tiling
    S.eliminate_zeros()
    K.eliminate_zeros()
    return MatrixPair(K=K, S=S, blocks=blocks, model=model)


def build_block_pattern(
    system: System,
    model: Optional[HamiltonianModel] = None,
    basis: Optional[BasisSet] = None,
    eps_filter: float = 1e-5,
    margin: float = 2.5,
) -> Tuple[sp.csr_matrix, BlockStructure]:
    """Block-level sparsity pattern of the (orthogonalized) Kohn–Sham matrix.

    For the pattern-level analyses of the paper (Figs. 2, 4, 5, 11 and the
    cost models behind Figs. 6, 8, 9, 10) only the information *which
    molecule blocks interact above the filter threshold* is needed, not the
    numerical values.  A block (i, j) is non-zero when the molecule centres
    are closer than the interaction radius implied by ``eps_filter`` plus a
    geometric ``margin`` accounting for the extent of the molecules.

    Returns
    -------
    (pattern, blocks):
        ``pattern`` is a boolean CSR matrix of shape (n_molecules,
        n_molecules) including the diagonal; ``blocks`` is the corresponding
        block structure.
    """
    if model is None:
        model = HamiltonianModel(basis=basis if basis is not None else SZV)
    basis = model.basis
    blocks = block_structure(system, basis)
    n_mol = system.n_molecules
    centers = system.molecule_centers()
    r_cut = cutoff_radius(model, eps_filter) + margin
    from repro.chem.atoms import neighbor_pairs as _np_pairs

    i, j, _ = _np_pairs(centers, system.cell, r_cut)
    data = np.ones(2 * len(i) + n_mol, dtype=bool)
    rows = np.concatenate([i, j, np.arange(n_mol)])
    cols = np.concatenate([j, i, np.arange(n_mol)])
    pattern = sp.coo_matrix((data, (rows, cols)), shape=(n_mol, n_mol)).tocsr()
    pattern.data[:] = True
    return pattern, blocks
