"""Quantum-chemistry substrate.

This subpackage replaces CP2K/Quickstep as the source of Kohn–Sham and overlap
matrices.  It provides

* atomistic containers with periodic boundary conditions (:mod:`repro.chem.atoms`),
* the liquid-water benchmark-system generator used throughout the paper
  (:mod:`repro.chem.water`),
* single-zeta and double-zeta basis-set models (:mod:`repro.chem.basis`),
* a distance-decay model Hamiltonian / overlap builder producing matrices with
  the same block structure, sparsity and spectral features as the CP2K
  matrices (:mod:`repro.chem.hamiltonian`),
* Löwdin symmetric orthogonalization (:mod:`repro.chem.orthogonalize`), and
* dense reference density-matrix solvers and energy expressions
  (:mod:`repro.chem.density`).
"""

from repro.chem.atoms import Atom, Cell, System
from repro.chem.basis import BasisSet, DZVP, SZV, get_basis
from repro.chem.water import water_box, water_molecule, base_water_cell
from repro.chem.hamiltonian import (
    HamiltonianModel,
    BlockStructure,
    MatrixPair,
    block_structure,
    build_matrices,
    build_block_pattern,
    cutoff_radius,
)
from repro.chem.orthogonalize import loewdin_inverse_sqrt, orthogonalized_ks
from repro.chem.density import (
    reference_density_matrix,
    band_structure_energy,
    electron_count,
    density_from_sign,
)

__all__ = [
    "Atom",
    "Cell",
    "System",
    "BasisSet",
    "SZV",
    "DZVP",
    "get_basis",
    "water_box",
    "water_molecule",
    "base_water_cell",
    "HamiltonianModel",
    "BlockStructure",
    "MatrixPair",
    "block_structure",
    "build_matrices",
    "build_block_pattern",
    "cutoff_radius",
    "loewdin_inverse_sqrt",
    "orthogonalized_ks",
    "reference_density_matrix",
    "band_structure_energy",
    "electron_count",
    "density_from_sign",
]
