"""Density-matrix utilities and dense reference solvers.

At zero temperature the one-particle reduced density matrix is a projector on
the occupied subspace,

    D = 1/2 (I - sign(S^{-1/2} K S^{-1/2} - μ I))        (orthogonal basis)
    D_AO = S^{-1/2} D S^{-1/2}                            (Eq. 16)

and the band-structure energy is E_band = Tr(D_AO K) (Eq. 10).  At finite
temperature the Heaviside occupation is replaced by the Fermi function.  This
module provides dense reference implementations used for validation and as
the ground truth in the accuracy experiments (Figs. 1 and 7), plus the small
helpers shared by the sparse solvers (electron counting, energy evaluation).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

__all__ = [
    "fermi_occupation",
    "density_from_sign",
    "reference_density_matrix",
    "band_structure_energy",
    "electron_count",
    "find_mu_for_electron_count",
    "ReferenceResult",
]

#: Boltzmann constant in eV/K.
KB_EV = 8.617333262e-5

#: Closed-shell spin degeneracy: each orbital holds two electrons.
SPIN_DEGENERACY = 2.0


def fermi_occupation(
    energies: np.ndarray, mu: float, temperature: float = 0.0
) -> np.ndarray:
    """Fermi–Dirac occupations of orbital ``energies`` at chemical potential μ.

    At ``temperature == 0`` this is the Heaviside function with the paper's
    extension f(μ) = 1/2 for states exactly at the chemical potential
    (Eq. 12/13), which is the zero-temperature limit of the Fermi function.
    """
    energies = np.asarray(energies, dtype=float)
    if temperature < 0:
        raise ValueError("temperature must be non-negative")
    # temperatures below ~1e-10 K are indistinguishable from zero and would
    # only produce overflow in the exponential
    if temperature <= 1e-10:
        occ = np.where(energies < mu, 1.0, 0.0)
        occ = np.where(energies == mu, 0.5, occ)
        return occ
    x = (energies - mu) / (KB_EV * temperature)
    # clip to avoid overflow in exp for far-from-mu states
    x = np.clip(x, -700.0, 700.0)
    return 1.0 / (np.exp(x) + 1.0)


def density_from_sign(
    sign_matrix: Union[np.ndarray, sp.spmatrix],
    s_inv_sqrt: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Density matrix from a computed matrix sign function.

    Implements D = 1/2 (I - sign(K̃ - μI)) and, if ``s_inv_sqrt`` is given,
    the back-transformation to the non-orthogonal AO basis of Eq. 16.

    Parameters
    ----------
    sign_matrix:
        sign(K̃ - μ I), dense or sparse.
    s_inv_sqrt:
        Optional dense S^{-1/2}; if given the returned density matrix is in
        the AO basis, otherwise in the orthogonalized basis.
    """
    sign_dense = (
        sign_matrix.toarray() if sp.issparse(sign_matrix) else np.asarray(sign_matrix)
    )
    n = sign_dense.shape[0]
    density = 0.5 * (np.eye(n) - sign_dense)
    if s_inv_sqrt is not None:
        density = s_inv_sqrt @ density @ s_inv_sqrt
    return density


@dataclasses.dataclass
class ReferenceResult:
    """Result of the dense reference density-matrix calculation."""

    density_ao: np.ndarray
    density_ortho: np.ndarray
    orbital_energies: np.ndarray
    occupations: np.ndarray
    mu: float
    n_electrons: float
    band_energy: float


def reference_density_matrix(
    K: Union[np.ndarray, sp.spmatrix],
    S: Union[np.ndarray, sp.spmatrix],
    mu: Optional[float] = None,
    n_electrons: Optional[float] = None,
    temperature: float = 0.0,
    spin_degeneracy: float = SPIN_DEGENERACY,
) -> ReferenceResult:
    """Dense reference solution of the density matrix.

    Either ``mu`` (grand-canonical) or ``n_electrons`` (canonical) must be
    given.  The generalized eigenvalue problem is solved exactly via Löwdin
    orthogonalization and dense diagonalization — the cubic-scaling reference
    against which the linear-scaling methods are compared.
    """
    from repro.chem.orthogonalize import loewdin_inverse_sqrt

    K_dense = K.toarray() if sp.issparse(K) else np.asarray(K, dtype=float)
    s_inv_sqrt = loewdin_inverse_sqrt(S)
    k_ortho = s_inv_sqrt @ K_dense @ s_inv_sqrt
    k_ortho = 0.5 * (k_ortho + k_ortho.T)
    energies, vectors = np.linalg.eigh(k_ortho)

    if mu is None and n_electrons is None:
        raise ValueError("either mu or n_electrons must be specified")
    if mu is None:
        mu = find_mu_for_electron_count(
            energies, n_electrons, temperature, spin_degeneracy
        )

    occ = fermi_occupation(energies, mu, temperature)
    density_ortho = (vectors * occ) @ vectors.T
    density_ao = s_inv_sqrt @ density_ortho @ s_inv_sqrt
    n_elec = float(spin_degeneracy * occ.sum())
    band = band_structure_energy(density_ao, K_dense, spin_degeneracy)
    return ReferenceResult(
        density_ao=density_ao,
        density_ortho=density_ortho,
        orbital_energies=energies,
        occupations=occ,
        mu=float(mu),
        n_electrons=n_elec,
        band_energy=band,
    )


def band_structure_energy(
    density_ao: Union[np.ndarray, sp.spmatrix],
    K: Union[np.ndarray, sp.spmatrix],
    spin_degeneracy: float = SPIN_DEGENERACY,
) -> float:
    """Band-structure energy E_band = g_s · Tr(D K) (Eq. 10).

    ``spin_degeneracy`` (g_s) defaults to 2 for closed-shell systems; the
    paper's Eq. 10 absorbs the factor into D, here it is kept explicit.
    """
    if sp.issparse(density_ao) and sp.issparse(K):
        return float(spin_degeneracy * density_ao.multiply(K.T).sum())
    D = density_ao.toarray() if sp.issparse(density_ao) else np.asarray(density_ao)
    K_dense = K.toarray() if sp.issparse(K) else np.asarray(K)
    return float(spin_degeneracy * np.tensordot(D, K_dense.T, axes=2))


def electron_count(
    density_ortho: Union[np.ndarray, sp.spmatrix],
    spin_degeneracy: float = SPIN_DEGENERACY,
) -> float:
    """Number of electrons from the orthogonal-basis density matrix (Eq. 18).

    In the orthogonalized basis the electron count is simply the trace of the
    density matrix (times the spin degeneracy).
    """
    if sp.issparse(density_ortho):
        trace = density_ortho.diagonal().sum()
    else:
        trace = np.trace(np.asarray(density_ortho))
    return float(spin_degeneracy * trace)


def find_mu_for_electron_count(
    orbital_energies: np.ndarray,
    n_electrons: float,
    temperature: float = 0.0,
    spin_degeneracy: float = SPIN_DEGENERACY,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
) -> float:
    """Chemical potential μ reproducing ``n_electrons`` by bisection.

    This is the orbital-space analogue of the paper's Algorithm 1 and is used
    by the dense reference solver for canonical-ensemble calculations.
    """
    energies = np.sort(np.asarray(orbital_energies, dtype=float))
    if n_electrons < 0 or n_electrons > spin_degeneracy * energies.size:
        raise ValueError(
            f"cannot place {n_electrons} electrons in "
            f"{energies.size} orbitals with degeneracy {spin_degeneracy}"
        )

    def count(mu: float) -> float:
        return float(
            spin_degeneracy * fermi_occupation(energies, mu, temperature).sum()
        )

    lo = energies[0] - 10.0
    hi = energies[-1] + 10.0
    for _ in range(max_iterations):
        mid = 0.5 * (lo + hi)
        c = count(mid)
        if abs(c - n_electrons) <= tolerance:
            return mid
        if c < n_electrons:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
