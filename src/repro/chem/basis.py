"""Basis-set models.

The paper uses the MOLOPT short-range GTH basis sets of CP2K:

* SZV-MOLOPT-SR-GTH — single-zeta valence: 1 basis function on H (1s) and
  4 on O (2s, 2p), i.e. 6 functions per water molecule;
* DZVP-MOLOPT-SR-GTH — double-zeta valence plus polarization: 5 functions on
  H (2x 1s + 1p) and 13 on O (2x 2s + 2x 2p + 1d), i.e. 23 functions per
  water molecule.

The submatrix method only needs three properties of the basis: the number of
basis functions per atom (which sets the DBCSR block sizes), the decay length
of matrix elements with interatomic distance (which sets the sparsity and the
submatrix dimension; larger basis sets are more long-ranged, cf. Sec. V-C),
and the number of occupied orbitals (electron count).  These are captured in
:class:`BasisSet`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping

__all__ = ["BasisSet", "SZV", "DZVP", "get_basis"]


@dataclasses.dataclass(frozen=True)
class BasisSet:
    """A minimal atom-centred basis-set description.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"SZV-MOLOPT-SR-GTH"``.
    functions_per_element:
        Number of basis functions per element symbol.
    decay_length:
        Characteristic decay length (Å) of Hamiltonian/overlap matrix elements
        between basis functions on different atoms.  Larger basis sets are
        more long-ranged (paper Sec. V-C), so DZVP uses a larger value.
    overlap_decay_length:
        Characteristic decay length (Å) of overlap matrix elements; overlaps
        decay faster than the Hamiltonian couplings in this model.
    """

    name: str
    functions_per_element: Mapping[str, int]
    decay_length: float
    overlap_decay_length: float

    def functions_for(self, symbol: str) -> int:
        """Number of basis functions carried by an atom of ``symbol``."""
        try:
            return int(self.functions_per_element[symbol])
        except KeyError as exc:
            raise KeyError(
                f"basis set {self.name!r} has no entry for element {symbol!r}"
            ) from exc

    def functions_for_molecule(self, symbols) -> int:
        """Total number of basis functions for a molecule given its atoms."""
        return int(sum(self.functions_for(s) for s in symbols))

    @property
    def water_block_size(self) -> int:
        """Number of basis functions per water molecule (one DBCSR block)."""
        return self.functions_for("O") + 2 * self.functions_for("H")


#: Single-zeta valence basis (6 functions per water molecule).
SZV = BasisSet(
    name="SZV-MOLOPT-SR-GTH",
    functions_per_element={"H": 1, "O": 4},
    decay_length=1.00,
    overlap_decay_length=0.70,
)

#: Double-zeta valence + polarization basis (23 functions per water molecule).
DZVP = BasisSet(
    name="DZVP-MOLOPT-SR-GTH",
    functions_per_element={"H": 5, "O": 13},
    decay_length=1.30,
    overlap_decay_length=0.90,
)

_REGISTRY: Dict[str, BasisSet] = {
    "SZV": SZV,
    "SZV-MOLOPT-SR-GTH": SZV,
    "DZVP": DZVP,
    "DZVP-MOLOPT-SR-GTH": DZVP,
}


def get_basis(name: str) -> BasisSet:
    """Look up a basis set by (short or full) name.

    Raises
    ------
    KeyError
        If the name is not registered.
    """
    key = name.upper()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown basis set {name!r}; available: {sorted(set(_REGISTRY))}"
        )
    return _REGISTRY[key]
