"""Liquid-water benchmark-system generator.

The paper's evaluation systems are built from a fixed-size region containing
32 H2O molecules that is replicated along each dimension by a factor NREP
(Sec. V): NREP = 2 gives 768 atoms, NREP = 6 gives 20,736 atoms, NREP = 8
gives 49,152 atoms.  The weak-scaling study replicates a 12,000-atom base
system along a single dimension only.

This module recreates that construction synthetically: a 32-molecule cubic
cell at liquid-water density with deterministic pseudo-random molecular
positions and orientations, replicated into larger boxes or slabs.  Atom
ordering is consecutive within each 32-molecule building block, which yields
the banded block-sparsity pattern shown in Fig. 2 of the paper.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from repro.chem.atoms import Atom, Cell, System

__all__ = [
    "water_molecule",
    "base_water_cell",
    "water_box",
    "MOLECULES_PER_CELL",
    "BASE_CELL_LENGTH",
]

#: Number of water molecules in the basic building block (as in the paper).
MOLECULES_PER_CELL = 32

#: Edge length (Å) of the cubic 32-molecule cell.  Chosen to reproduce the
#: density of liquid water (~0.997 g/cm³): 32 molecules / (9.86 Å)³.
BASE_CELL_LENGTH = 9.86

#: Experimental water geometry used for the rigid molecules.
OH_BOND_LENGTH = 0.9572
HOH_ANGLE_DEG = 104.52


def water_molecule(
    center: Sequence[float],
    orientation: np.ndarray = None,
    molecule_index: int = 0,
) -> Tuple[Atom, Atom, Atom]:
    """Create a rigid water molecule centred at ``center``.

    Parameters
    ----------
    center:
        Position of the oxygen atom (Å).
    orientation:
        Optional 3x3 rotation matrix applied to the molecule.  Identity if
        omitted.
    molecule_index:
        Molecule index assigned to all three atoms.

    Returns
    -------
    (O, H, H):
        The three atoms of the molecule, oxygen first.  Oxygen-first ordering
        is assumed by the basis-set bookkeeping.
    """
    center = np.asarray(center, dtype=float)
    half_angle = np.deg2rad(HOH_ANGLE_DEG) / 2.0
    h1 = OH_BOND_LENGTH * np.array([np.sin(half_angle), 0.0, np.cos(half_angle)])
    h2 = OH_BOND_LENGTH * np.array([-np.sin(half_angle), 0.0, np.cos(half_angle)])
    if orientation is not None:
        orientation = np.asarray(orientation, dtype=float)
        if orientation.shape != (3, 3):
            raise ValueError("orientation must be a 3x3 rotation matrix")
        h1 = orientation @ h1
        h2 = orientation @ h2
    return (
        Atom("O", center, molecule_index),
        Atom("H", center + h1, molecule_index),
        Atom("H", center + h2, molecule_index),
    )


def _random_rotation(rng: np.random.Generator) -> np.ndarray:
    """Draw a uniformly distributed random rotation matrix (QR trick)."""
    m = rng.normal(size=(3, 3))
    q, r = np.linalg.qr(m)
    q *= np.sign(np.diag(r))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    return q


#: Shortest allowed intermolecular atom-atom contact (Å).  Real liquid water
#: has hydrogen-bond H···O contacts of about 1.7-1.9 Å.
MIN_INTERMOLECULAR_CONTACT = 1.65


def base_water_cell(seed: int = 2020, jitter: float = 0.25) -> System:
    """Build the 32-molecule cubic water cell used as the replication unit.

    Oxygen atoms are placed on the 32 "even" sites of a 4x4x4 checkerboard
    sub-lattice of the cubic cell (nearest O-O distance ≈ 3.5 Å, close to the
    ~2.8-3.4 Å of liquid water), perturbed by a small random jitter, with
    random molecular orientations.  Orientations/jitters that would create
    intermolecular contacts shorter than ~1.65 Å are re-drawn, so the
    resulting structure has liquid-like disorder without unphysical clashes.
    All randomness comes from a seeded generator, so the benchmark systems
    are fully reproducible.

    Parameters
    ----------
    seed:
        Seed for positions/orientations.
    jitter:
        Maximum displacement (Å) applied to the lattice positions of the
        oxygen atoms.
    """
    rng = np.random.default_rng(seed)
    cell = Cell(np.full(3, BASE_CELL_LENGTH))
    # 32 even sites of a 4x4x4 checkerboard
    sites = []
    spacing = BASE_CELL_LENGTH / 4
    for ix in range(4):
        for iy in range(4):
            for iz in range(4):
                if (ix + iy + iz) % 2 == 0:
                    sites.append((np.array([ix, iy, iz]) + 0.5) * spacing)
    assert len(sites) == MOLECULES_PER_CELL

    placed_atoms: list = []
    placed_positions: list = []

    def too_close(candidate_positions) -> bool:
        if not placed_positions:
            return False
        existing = np.array(placed_positions)
        for position in candidate_positions:
            delta = existing - position
            for axis in range(3):
                length = cell.lengths[axis]
                delta[:, axis] -= length * np.round(delta[:, axis] / length)
            if np.min(np.linalg.norm(delta, axis=1)) < MIN_INTERMOLECULAR_CONTACT:
                return True
        return False

    for molecule, site in enumerate(sites):
        for _attempt in range(200):
            displacement = rng.uniform(-jitter, jitter, size=3)
            rot = _random_rotation(rng)
            candidate = water_molecule(site + displacement, rot, molecule)
            candidate_positions = [atom.position for atom in candidate]
            if not too_close(candidate_positions):
                break
        placed_atoms.extend(candidate)
        placed_positions.extend(candidate_positions)
    return System(placed_atoms, cell)


def water_box(
    nrep: Union[int, Sequence[int]],
    seed: int = 2020,
    jitter: float = 0.35,
) -> System:
    """Build a liquid-water benchmark system by replicating the base cell.

    Parameters
    ----------
    nrep:
        Either an integer ``NREP`` (replication factor applied to all three
        dimensions, as in the paper's main benchmarks: the system then
        contains ``32 * NREP**3`` molecules), or a sequence of three integers
        for anisotropic replication (used in the paper's weak-scaling slabs,
        which replicate along one dimension only).
    seed:
        Seed forwarded to :func:`base_water_cell`.
    jitter:
        Jitter forwarded to :func:`base_water_cell`.

    Returns
    -------
    System
        Water system with atoms ordered consecutively per 32-molecule
        building block.
    """
    if np.isscalar(nrep):
        factors = (int(nrep),) * 3
    else:
        factors = tuple(int(v) for v in nrep)
        if len(factors) != 3:
            raise ValueError("nrep must be an int or a sequence of three ints")
    if any(f < 1 for f in factors):
        raise ValueError("replication factors must be >= 1")
    base = base_water_cell(seed=seed, jitter=jitter)
    if factors == (1, 1, 1):
        return base
    return base.replicate(factors)
