"""Atomistic containers with orthorhombic periodic boundary conditions.

The paper's benchmark systems are cubes (and, for weak scaling, slabs) of
liquid water described with atom-centred basis sets.  The only structural
information the submatrix method consumes is

* atom positions and elements,
* the assignment of atoms to molecules (DBCSR blocks correspond to molecules
  in the water benchmarks, cf. Fig. 2 of the paper),
* periodic minimum-image distances between atoms and between molecule centres.

This module provides exactly that, plus an O(N) cell-list neighbour search so
that sparsity patterns of systems with tens of thousands of atoms can be
generated without forming the full pairwise distance matrix.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Atom",
    "Cell",
    "System",
    "minimum_image_displacement",
    "neighbor_pairs",
]


#: Number of valence electrons per element under GTH-style pseudopotentials,
#: as used by the MOLOPT basis sets in the paper (H: 1, O: 6).
VALENCE_ELECTRONS: Dict[str, int] = {
    "H": 1,
    "O": 6,
    "C": 4,
    "N": 5,
}


@dataclasses.dataclass(frozen=True)
class Atom:
    """A single atom.

    Parameters
    ----------
    symbol:
        Chemical element symbol, e.g. ``"O"`` or ``"H"``.
    position:
        Cartesian position in Ångström as a length-3 array.
    molecule:
        Index of the molecule this atom belongs to.  Molecules define the
        DBCSR block structure used throughout the reproduction.
    """

    symbol: str
    position: np.ndarray
    molecule: int = 0

    def __post_init__(self) -> None:
        pos = np.asarray(self.position, dtype=float)
        if pos.shape != (3,):
            raise ValueError(f"position must have shape (3,), got {pos.shape}")
        object.__setattr__(self, "position", pos)

    @property
    def valence_electrons(self) -> int:
        """Number of valence electrons contributed by this atom."""
        try:
            return VALENCE_ELECTRONS[self.symbol]
        except KeyError as exc:  # pragma: no cover - defensive
            raise KeyError(f"unknown element {self.symbol!r}") from exc


@dataclasses.dataclass(frozen=True)
class Cell:
    """An orthorhombic simulation cell.

    Parameters
    ----------
    lengths:
        Cell edge lengths (a, b, c) in Ångström.
    periodic:
        Periodicity flags per direction.  The water benchmarks in the paper
        use full 3D periodic boundary conditions; the weak-scaling slabs are
        periodic as well but replicated in a single direction.
    """

    lengths: np.ndarray
    periodic: Tuple[bool, bool, bool] = (True, True, True)

    def __post_init__(self) -> None:
        lengths = np.asarray(self.lengths, dtype=float)
        if lengths.shape != (3,):
            raise ValueError(f"lengths must have shape (3,), got {lengths.shape}")
        if np.any(lengths <= 0):
            raise ValueError("cell lengths must be positive")
        object.__setattr__(self, "lengths", lengths)
        object.__setattr__(self, "periodic", tuple(bool(p) for p in self.periodic))

    @property
    def volume(self) -> float:
        """Cell volume in Å³."""
        return float(np.prod(self.lengths))

    def wrap(self, positions: np.ndarray) -> np.ndarray:
        """Wrap positions into the primary cell along periodic directions."""
        positions = np.atleast_2d(np.asarray(positions, dtype=float)).copy()
        for axis in range(3):
            if self.periodic[axis]:
                positions[:, axis] = np.mod(positions[:, axis], self.lengths[axis])
        return positions

    def replicate(self, factors: Sequence[int]) -> "Cell":
        """Return a cell enlarged by integer replication factors per axis."""
        factors = np.asarray(factors, dtype=int)
        if factors.shape != (3,) or np.any(factors < 1):
            raise ValueError("replication factors must be three positive integers")
        return Cell(self.lengths * factors, self.periodic)


def minimum_image_displacement(
    delta: np.ndarray, cell: Optional[Cell]
) -> np.ndarray:
    """Apply the minimum-image convention to displacement vectors.

    Parameters
    ----------
    delta:
        Array of displacement vectors, shape (..., 3).
    cell:
        Simulation cell, or ``None`` for an isolated (non-periodic) system.
    """
    delta = np.asarray(delta, dtype=float)
    if cell is None:
        return delta
    delta = delta.copy()
    for axis in range(3):
        if cell.periodic[axis]:
            length = cell.lengths[axis]
            delta[..., axis] -= length * np.round(delta[..., axis] / length)
    return delta


class System:
    """A collection of atoms in a periodic cell.

    The class caches per-molecule bookkeeping (atom indices per molecule,
    molecule centres) because the Hamiltonian builder and the submatrix
    grouping heuristics use molecule-level quantities heavily.
    """

    def __init__(self, atoms: Iterable[Atom], cell: Cell):
        self.atoms: List[Atom] = list(atoms)
        if not self.atoms:
            raise ValueError("a System needs at least one atom")
        self.cell = cell
        self._positions = np.array([a.position for a in self.atoms], dtype=float)
        self._symbols = [a.symbol for a in self.atoms]
        self._molecule_index = np.array([a.molecule for a in self.atoms], dtype=int)
        if np.any(self._molecule_index < 0):
            raise ValueError("molecule indices must be non-negative")
        # Molecules must be numbered 0..n_molecules-1 without gaps so that
        # molecule indices can directly serve as block indices.
        unique = np.unique(self._molecule_index)
        expected = np.arange(unique.size)
        if not np.array_equal(unique, expected):
            raise ValueError(
                "molecule indices must be consecutive integers starting at 0"
            )
        self._n_molecules = int(unique.size)
        self._atoms_per_molecule: List[np.ndarray] = [
            np.flatnonzero(self._molecule_index == m) for m in range(self._n_molecules)
        ]

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.atoms)

    @property
    def n_atoms(self) -> int:
        """Total number of atoms."""
        return len(self.atoms)

    @property
    def n_molecules(self) -> int:
        """Total number of molecules (DBCSR block columns)."""
        return self._n_molecules

    @property
    def positions(self) -> np.ndarray:
        """Atom positions as an (n_atoms, 3) array (Å)."""
        return self._positions

    @property
    def symbols(self) -> List[str]:
        """Element symbols in atom order."""
        return list(self._symbols)

    @property
    def molecule_index(self) -> np.ndarray:
        """Molecule index per atom."""
        return self._molecule_index

    def atoms_in_molecule(self, molecule: int) -> np.ndarray:
        """Indices of the atoms belonging to ``molecule``."""
        return self._atoms_per_molecule[molecule]

    @property
    def valence_electrons(self) -> int:
        """Total number of valence electrons in the system."""
        return int(sum(a.valence_electrons for a in self.atoms))

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #
    def molecule_centers(self) -> np.ndarray:
        """Geometric centres of all molecules, shape (n_molecules, 3).

        Centres are computed with the first atom of each molecule as the
        reference so that molecules broken across periodic boundaries are
        re-assembled before averaging.
        """
        centers = np.empty((self._n_molecules, 3), dtype=float)
        for m, idx in enumerate(self._atoms_per_molecule):
            ref = self._positions[idx[0]]
            delta = minimum_image_displacement(self._positions[idx] - ref, self.cell)
            centers[m] = ref + delta.mean(axis=0)
        return self.cell.wrap(centers)

    def distance(self, i: int, j: int) -> float:
        """Minimum-image distance between atoms ``i`` and ``j`` (Å)."""
        delta = minimum_image_displacement(
            self._positions[j] - self._positions[i], self.cell
        )
        return float(np.linalg.norm(delta))

    def distance_matrix(self) -> np.ndarray:
        """Dense minimum-image distance matrix between all atoms.

        Only intended for small systems (memory grows as n_atoms²); large
        systems should use :func:`neighbor_pairs`.
        """
        delta = self._positions[None, :, :] - self._positions[:, None, :]
        delta = minimum_image_displacement(delta, self.cell)
        return np.linalg.norm(delta, axis=-1)

    def neighbor_pairs(self, cutoff: float) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All atom pairs (i < j) within ``cutoff`` and their distances.

        Uses an O(N) cell-list search, see :func:`neighbor_pairs`.
        """
        return neighbor_pairs(self._positions, self.cell, cutoff)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def replicate(self, factors: Sequence[int]) -> "System":
        """Replicate the system by integer factors along the cell axes.

        Atom ordering is consecutive within each replica (building block),
        which is exactly the ordering the paper relies on for the banded
        structure of the Kohn–Sham matrix (Sec. IV-B2).
        """
        factors = np.asarray(factors, dtype=int)
        if factors.shape != (3,) or np.any(factors < 1):
            raise ValueError("replication factors must be three positive integers")
        new_cell = self.cell.replicate(factors)
        new_atoms: List[Atom] = []
        mol_offset = 0
        for ix in range(factors[0]):
            for iy in range(factors[1]):
                for iz in range(factors[2]):
                    shift = self.cell.lengths * np.array([ix, iy, iz], dtype=float)
                    for atom in self.atoms:
                        new_atoms.append(
                            Atom(
                                atom.symbol,
                                atom.position + shift,
                                atom.molecule + mol_offset,
                            )
                        )
                    mol_offset += self._n_molecules
        return System(new_atoms, new_cell)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"System(n_atoms={self.n_atoms}, n_molecules={self.n_molecules}, "
            f"cell={self.cell.lengths.tolist()})"
        )


def _cell_list_bins(
    positions: np.ndarray, cell: Cell, cutoff: float
) -> Tuple[np.ndarray, np.ndarray, Dict[Tuple[int, int, int], np.ndarray]]:
    """Assign atoms to spatial bins of edge length >= cutoff."""
    n_bins = np.maximum(1, np.floor(cell.lengths / cutoff).astype(int))
    wrapped = cell.wrap(positions)
    bin_size = cell.lengths / n_bins
    bin_idx = np.minimum((wrapped / bin_size).astype(int), n_bins - 1)
    contents: Dict[Tuple[int, int, int], np.ndarray] = {}
    order = np.lexsort((bin_idx[:, 2], bin_idx[:, 1], bin_idx[:, 0]))
    sorted_bins = bin_idx[order]
    boundaries = np.flatnonzero(np.any(np.diff(sorted_bins, axis=0) != 0, axis=1)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(order)]))
    for s, e in zip(starts, ends):
        key = tuple(int(v) for v in sorted_bins[s])
        contents[key] = order[s:e]
    return n_bins, bin_idx, contents


def neighbor_pairs(
    positions: np.ndarray, cell: Optional[Cell], cutoff: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Find all pairs of points within ``cutoff`` under minimum image.

    Parameters
    ----------
    positions:
        (n, 3) array of positions in Å.
    cell:
        Periodic cell or ``None`` for an isolated system.
    cutoff:
        Distance cutoff in Å.

    Returns
    -------
    (i, j, r):
        Arrays of pair indices with ``i < j`` and the corresponding
        minimum-image distances.  Pairs are sorted lexicographically by
        ``(i, j)`` to make downstream construction deterministic.

    Notes
    -----
    For small systems (or when the cutoff exceeds half the shortest periodic
    cell edge, where cell lists would be incorrect) a dense O(N²) computation
    is used; otherwise an O(N) cell-list search keeps memory bounded.
    """
    positions = np.asarray(positions, dtype=float)
    n = positions.shape[0]
    if n == 0:
        empty = np.empty(0, dtype=int)
        return empty, empty, np.empty(0, dtype=float)

    use_dense = n <= 2048
    if cell is not None and not use_dense:
        # cell lists need at least 3 bins per periodic direction to be valid
        min_bins = np.floor(cell.lengths / cutoff)
        if np.any(min_bins < 3):
            use_dense = True

    if use_dense:
        delta = positions[None, :, :] - positions[:, None, :]
        delta = minimum_image_displacement(delta, cell)
        dist = np.linalg.norm(delta, axis=-1)
        iu, ju = np.triu_indices(n, k=1)
        mask = dist[iu, ju] <= cutoff
        i, j, r = iu[mask], ju[mask], dist[iu, ju][mask]
        order = np.lexsort((j, i))
        return i[order], j[order], r[order]

    assert cell is not None
    n_bins, bin_idx, contents = _cell_list_bins(positions, cell, cutoff)
    wrapped = cell.wrap(positions)
    pair_i: List[np.ndarray] = []
    pair_j: List[np.ndarray] = []
    pair_r: List[np.ndarray] = []
    neighbor_offsets = [
        (dx, dy, dz)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
    ]
    for key, atoms_a in contents.items():
        for off in neighbor_offsets:
            nkey = tuple((np.array(key) + np.array(off)) % n_bins)
            if nkey not in contents:
                continue
            atoms_b = contents[nkey]
            delta = wrapped[atoms_b][None, :, :] - wrapped[atoms_a][:, None, :]
            delta = minimum_image_displacement(delta, cell)
            dist = np.linalg.norm(delta, axis=-1)
            ia = np.repeat(atoms_a, len(atoms_b))
            jb = np.tile(atoms_b, len(atoms_a))
            dd = dist.ravel()
            mask = (dd <= cutoff) & (ia < jb)
            if np.any(mask):
                pair_i.append(ia[mask])
                pair_j.append(jb[mask])
                pair_r.append(dd[mask])
    if not pair_i:
        empty = np.empty(0, dtype=int)
        return empty, empty, np.empty(0, dtype=float)
    i = np.concatenate(pair_i)
    j = np.concatenate(pair_j)
    r = np.concatenate(pair_r)
    # duplicates can arise when a bin pair is visited from both sides
    keys = i.astype(np.int64) * n + j
    _, unique_idx = np.unique(keys, return_index=True)
    i, j, r = i[unique_idx], j[unique_idx], r[unique_idx]
    order = np.lexsort((j, i))
    return i[order], j[order], r[order]
