"""Hardware-acceleration emulation (Sec. VI of the paper).

The submatrix method turns the sparse, distributed sign-function evaluation
into dense matrix algebra on local submatrices, which maps naturally onto
GPUs (tensor cores) and FPGAs and tolerates reduced precision.  The paper
studies a third-order Padé sign iteration executed in half (FP16), mixed
(FP16 multiply / FP32 accumulate, "FP16'"), single (FP32) and double (FP64)
precision on an RTX 2080 Ti and in FP32 on a Stratix 10 FPGA.

Without that hardware, this subpackage reproduces

* the *numerics*: :mod:`repro.accel.precision` emulates the reduced-precision
  GEMMs with NumPy dtype arithmetic, and :mod:`repro.accel.sign_iteration`
  runs the third-order iteration under those precisions while tracking the
  per-iteration energy deviation (Fig. 12) and the involutority violation
  ‖X²−I‖_F (Fig. 13);
* the *performance accounting*: :mod:`repro.accel.perf_model` reproduces
  Table I (peak vs. practical GEMM vs. end-to-end sign-algorithm throughput)
  from an analytic device model parameterised with the published device
  characteristics.
"""

from repro.accel.precision import PrecisionMode, gemm, convert, PRECISION_MODES
from repro.accel.sign_iteration import (
    MixedPrecisionSignResult,
    mixed_precision_sign_iteration,
)
from repro.accel.perf_model import (
    DeviceSpec,
    SignAlgorithmPerformance,
    RTX_2080_TI,
    STRATIX_10,
    model_sign_algorithm_performance,
    performance_table,
)

__all__ = [
    "PrecisionMode",
    "PRECISION_MODES",
    "gemm",
    "convert",
    "MixedPrecisionSignResult",
    "mixed_precision_sign_iteration",
    "DeviceSpec",
    "SignAlgorithmPerformance",
    "RTX_2080_TI",
    "STRATIX_10",
    "model_sign_algorithm_performance",
    "performance_table",
]
