"""Analytic device performance model for the sign algorithm (Table I).

Table I of the paper lists, for an NVIDIA RTX 2080 Ti and four precision
modes, three throughput numbers for a submatrix of dimension 3972: the
device's peak GEMM performance, the practically achieved GEMM performance for
that matrix size, and the end-to-end performance of the full sign algorithm
including type conversions, host–device transfer and convergence tests.  The
text additionally reports the corresponding FP32 numbers for a Stratix 10
FPGA that offloads individual multiplications over an 8-lane PCIe link.

Without the hardware, the reproduction recomputes the end-to-end number from
the published peak/practical GEMM rates and an explicit time accounting of
the non-GEMM steps — the same accounting the paper describes:

    t_total = t_GEMM + t_convert + t_transfer + t_convergence

With the default device parameters this reproduces the shape of Table I: the
faster the GEMMs, the larger the fraction of time lost to conversions and
transfers, so the end-to-end rate saturates well below the practical GEMM
rate for FP16/FP16' while FP64 stays GEMM-bound.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional

import numpy as np

__all__ = [
    "DeviceSpec",
    "SignAlgorithmPerformance",
    "RTX_2080_TI",
    "STRATIX_10",
    "model_sign_algorithm_performance",
    "performance_table",
]

_BYTES_PER_ELEMENT = {"FP16": 2, "FP16'": 2, "FP32": 4, "FP64": 8}


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """Characteristics of an accelerator device.

    Parameters
    ----------
    name:
        Device name.
    peak_tflops:
        Theoretical peak GEMM throughput per precision mode (TFLOP/s).
    gemm_tflops:
        Practically achieved GEMM throughput for submatrix-sized GEMMs per
        precision mode (TFLOP/s); taken from the paper's measurements.
    memory_bandwidth:
        Device memory bandwidth (bytes/s), used for type conversions and
        convergence tests.
    interconnect_bandwidth:
        Host–device bandwidth (bytes/s), e.g. PCIe 3.0 x16 ≈ 12 GB/s,
        PCIe 3.0 x8 ≈ 6 GB/s.
    power_watts:
        Board power, used for the energy-efficiency numbers quoted in the
        text (GFLOP/(W·s)).
    offload_granularity:
        ``"algorithm"`` if the full sign iteration runs on the device and
        only the input/output matrices cross the interconnect (the GPU
        implementation), ``"gemm"`` if every individual multiplication is
        shipped to the device and back (the initial FPGA implementation,
        Sec. VI-B).
    """

    name: str
    peak_tflops: Dict[str, float]
    gemm_tflops: Dict[str, float]
    memory_bandwidth: float
    interconnect_bandwidth: float
    power_watts: float
    offload_granularity: str = "algorithm"

    def supports(self, precision: str) -> bool:
        """Whether the device has GEMM rates for the given precision mode."""
        return precision in self.gemm_tflops


#: NVIDIA RTX 2080 Ti (Turing) as characterised in Sec. VI-A / Table I.
RTX_2080_TI = DeviceSpec(
    name="NVIDIA RTX 2080 Ti",
    peak_tflops={"FP16": 108.0, "FP16'": 56.0, "FP32": 13.0, "FP64": 0.5},
    gemm_tflops={"FP16": 56.4, "FP16'": 38.2, "FP32": 12.2, "FP64": 0.5},
    memory_bandwidth=616.0e9,
    interconnect_bandwidth=12.0e9,
    power_watts=250.0,
    offload_granularity="algorithm",
)

#: Bittware 520N board with an Intel Stratix 10 GX 2800 (Sec. VI-B).
STRATIX_10 = DeviceSpec(
    name="Intel Stratix 10 GX 2800 (Bittware 520N)",
    peak_tflops={"FP32": 3.4},
    gemm_tflops={"FP32": 2.7},
    memory_bandwidth=76.8e9,
    interconnect_bandwidth=6.0e9,
    power_watts=110.0,
    offload_granularity="gemm",
)


@dataclasses.dataclass
class SignAlgorithmPerformance:
    """Modelled performance of the sign algorithm on a device."""

    device: str
    precision: str
    matrix_dimension: int
    iterations: int
    peak_tflops: float
    gemm_tflops: float
    overall_tflops: float
    total_seconds: float
    gemm_seconds: float
    conversion_seconds: float
    transfer_seconds: float
    convergence_seconds: float
    gflops_per_watt_second: float


def model_sign_algorithm_performance(
    device: DeviceSpec,
    precision: str,
    matrix_dimension: int = 3972,
    iterations: int = 8,
    order: int = 3,
) -> SignAlgorithmPerformance:
    """Model the end-to-end throughput of the sign algorithm on a device.

    Parameters
    ----------
    device:
        Device specification.
    precision:
        Precision mode ("FP16", "FP16'", "FP32", "FP64").
    matrix_dimension:
        Submatrix dimension n (3972 in the paper: the combined submatrix of
        32 water molecules of the NREP=5 SZV system).
    iterations:
        Sign iterations until convergence (the paper observes 6–8).
    order:
        Order of the Padé iteration (3 → Eq. 19, which needs 3 GEMMs per
        iteration: X², the Horner step and the final X·poly).
    """
    if not device.supports(precision):
        raise ValueError(f"{device.name} has no GEMM rate for {precision}")
    if matrix_dimension < 1 or iterations < 1:
        raise ValueError("matrix_dimension and iterations must be positive")
    n = float(matrix_dimension)
    gemms_per_iteration = order  # X^2, Horner multiply(ies), final X·poly
    gemm_flops = 2.0 * n**3 * gemms_per_iteration * iterations
    gemm_rate = device.gemm_tflops[precision] * 1e12
    gemm_seconds = gemm_flops / gemm_rate

    element_bytes = _BYTES_PER_ELEMENT[precision]
    matrix_bytes = n * n * element_bytes

    # type conversions FP64 <-> storage precision on the device (read + write
    # of both matrices through device memory)
    conversion_seconds = 4.0 * n * n * (8 + element_bytes) / device.memory_bandwidth

    if device.offload_granularity == "algorithm":
        # only the input and output matrices cross the interconnect (FP64)
        transfer_seconds = 2.0 * n * n * 8 / device.interconnect_bandwidth
    else:
        # every GEMM ships two operands in and one result out
        per_gemm = 3.0 * matrix_bytes / device.interconnect_bandwidth
        transfer_seconds = per_gemm * gemms_per_iteration * iterations

    # convergence test per iteration: ||X^2 - I||_F, a memory-bound pass over
    # the already computed X^2
    convergence_seconds = iterations * 2.0 * n * n * element_bytes / device.memory_bandwidth

    total = gemm_seconds + conversion_seconds + transfer_seconds + convergence_seconds
    overall_tflops = gemm_flops / total / 1e12
    return SignAlgorithmPerformance(
        device=device.name,
        precision=precision,
        matrix_dimension=matrix_dimension,
        iterations=iterations,
        peak_tflops=device.peak_tflops[precision],
        gemm_tflops=device.gemm_tflops[precision],
        overall_tflops=overall_tflops,
        total_seconds=total,
        gemm_seconds=gemm_seconds,
        conversion_seconds=conversion_seconds,
        transfer_seconds=transfer_seconds,
        convergence_seconds=convergence_seconds,
        gflops_per_watt_second=overall_tflops * 1e3 / device.power_watts,
    )


def performance_table(
    device: DeviceSpec = RTX_2080_TI,
    precisions: Optional[Iterable[str]] = None,
    matrix_dimension: int = 3972,
    iterations: int = 8,
) -> List[SignAlgorithmPerformance]:
    """Rows of Table I: one entry per precision mode of the device."""
    if precisions is None:
        precisions = [p for p in ("FP16", "FP16'", "FP32", "FP64") if device.supports(p)]
    return [
        model_sign_algorithm_performance(
            device, precision, matrix_dimension, iterations
        )
        for precision in precisions
    ]
