"""Emulated reduced/mixed-precision matrix multiplication.

The GPU implementation in the paper uses cuBLAS tensor-core GEMMs in four
precision modes (Sec. VI-A):

* ``FP16``  — half-precision inputs, half-precision accumulation;
* ``FP16'`` — half-precision inputs, single-precision accumulation (the
  tensor cores' mixed mode);
* ``FP32``  — single precision throughout;
* ``FP64``  — double precision throughout.

NumPy emulates these by casting the inputs to the storage dtype, performing
the product in the accumulation dtype and casting the result back to the
storage dtype.  The emulation reproduces the qualitative behaviour that
matters for Figs. 12/13 — the attainable noise floor of each mode and the
fact that FP16/FP16' converge to a plateau rather than to machine precision —
even though the exact rounding sequence of tensor-core hardware differs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

__all__ = ["PrecisionMode", "PRECISION_MODES", "convert", "gemm"]


@dataclasses.dataclass(frozen=True)
class PrecisionMode:
    """A storage/accumulation precision combination.

    Attributes
    ----------
    name:
        Mode name as used in the paper ("FP16", "FP16'", "FP32", "FP64").
    storage_dtype:
        dtype in which matrices are stored and multiplied.
    accumulate_dtype:
        dtype in which products are accumulated.
    epsilon:
        Unit roundoff of the storage dtype (used by convergence heuristics).
    """

    name: str
    storage_dtype: np.dtype
    accumulate_dtype: np.dtype
    epsilon: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def _mode(name: str, storage, accumulate) -> PrecisionMode:
    storage = np.dtype(storage)
    accumulate = np.dtype(accumulate)
    return PrecisionMode(
        name=name,
        storage_dtype=storage,
        accumulate_dtype=accumulate,
        epsilon=float(np.finfo(storage).eps),
    )


#: The four precision modes studied in the paper.
PRECISION_MODES: Dict[str, PrecisionMode] = {
    "FP16": _mode("FP16", np.float16, np.float16),
    "FP16'": _mode("FP16'", np.float16, np.float32),
    "FP32": _mode("FP32", np.float32, np.float32),
    "FP64": _mode("FP64", np.float64, np.float64),
}


def convert(matrix: np.ndarray, mode: PrecisionMode) -> np.ndarray:
    """Round a matrix to the storage precision of ``mode``."""
    return np.asarray(matrix, dtype=mode.storage_dtype)


def gemm(a: np.ndarray, b: np.ndarray, mode: PrecisionMode) -> np.ndarray:
    """Matrix product in the given precision mode.

    Inputs are rounded to the storage dtype, the product is evaluated in the
    accumulation dtype, and the result is rounded back to the storage dtype
    (so that subsequent operations see storage-precision data, as on the real
    device where the GEMM output is written back to FP16/FP32 buffers).
    """
    a_stored = np.asarray(a, dtype=mode.storage_dtype)
    b_stored = np.asarray(b, dtype=mode.storage_dtype)
    product = np.matmul(
        a_stored.astype(mode.accumulate_dtype),
        b_stored.astype(mode.accumulate_dtype),
    )
    if mode.storage_dtype == mode.accumulate_dtype == np.dtype(np.float16):
        # emulate half-precision accumulation: round the accumulated result
        # through float16 (NumPy would otherwise accumulate in float32)
        product = product.astype(np.float16)
    return product.astype(mode.storage_dtype)
