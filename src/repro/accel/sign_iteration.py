"""Mixed-precision third-order sign iteration with convergence tracking.

Reproduces the numerical experiment behind Figs. 12 and 13 of the paper: the
third-order Padé sign iteration (Eq. 19) is executed on the dense submatrix
of a group of water molecules in FP16, FP16', FP32 and FP64, and for every
iteration two quantities are recorded:

* the band-structure energy of the represented molecules computed from the
  current iterate (its difference to the converged FP64 result is what
  Fig. 12 plots), and
* the violation of the involutority condition ‖X_k² − I‖_F (Fig. 13), which
  the paper identifies as the appropriate convergence criterion because the
  energy alone would signal convergence too early — and in FP16/FP16' the
  noise floor would prevent detecting convergence at all.

All bookkeeping (energy, involutority) is evaluated in float64 regardless of
the iteration precision, exactly like measuring the converged result on the
host after a device run.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.accel.precision import PRECISION_MODES, PrecisionMode, convert, gemm
from repro.signfn.pade import pade_polynomial_coefficients
from repro.signfn.utils import as_dense, spectral_scale_estimate

__all__ = ["MixedPrecisionSignResult", "mixed_precision_sign_iteration"]


@dataclasses.dataclass
class MixedPrecisionSignResult:
    """Per-iteration history of a reduced-precision sign iteration.

    Attributes
    ----------
    mode:
        Precision mode used for the iteration.
    sign:
        Final iterate (float64 copy).
    energies:
        Band-structure energy per iteration (eV), evaluated in float64 from
        the current iterate; empty if no Hamiltonian was supplied.
    involutority:
        ‖X_k² − I‖_F per iteration (float64).
    iterations:
        Number of iterations performed.
    flops:
        Floating-point operations spent in the iteration GEMMs.
    """

    mode: PrecisionMode
    sign: np.ndarray
    energies: List[float]
    involutority: List[float]
    iterations: int
    flops: float

    def energy_difference_to(self, reference_energy: float) -> np.ndarray:
        """Energy difference (eV) to a reference value, per iteration."""
        return np.asarray(self.energies, dtype=float) - reference_energy


def mixed_precision_sign_iteration(
    matrix: Union[np.ndarray, sp.spmatrix],
    precision: Union[str, PrecisionMode] = "FP64",
    mu: float = 0.0,
    order: int = 3,
    n_iterations: int = 14,
    hamiltonian: Optional[np.ndarray] = None,
    spin_degeneracy: float = 2.0,
) -> MixedPrecisionSignResult:
    """Run the order-``order`` sign iteration in the given precision.

    Parameters
    ----------
    matrix:
        Symmetric (sub)matrix, typically the orthogonalized Kohn–Sham
        submatrix of a group of molecules.
    precision:
        One of "FP16", "FP16'", "FP32", "FP64" or a :class:`PrecisionMode`.
    mu:
        Chemical potential; sign((matrix − μI)/s) is iterated.
    order:
        Convergence order of the Padé iteration (3 reproduces Eq. 19).
    n_iterations:
        Fixed number of iterations (the paper runs a fixed sweep and inspects
        the histories rather than stopping adaptively).
    hamiltonian:
        Optional Hamiltonian (same basis as ``matrix``) used to evaluate the
        per-iteration band-structure energy; defaults to ``matrix`` itself,
        which is the orthogonalized Kohn–Sham submatrix in the paper's setup.
    spin_degeneracy:
        Occupation of each orbital (2 for closed shells).
    """
    if isinstance(precision, str):
        try:
            mode = PRECISION_MODES[precision]
        except KeyError as exc:
            raise KeyError(
                f"unknown precision {precision!r}; available: "
                f"{sorted(PRECISION_MODES)}"
            ) from exc
    else:
        mode = precision
    dense = as_dense(matrix)
    n = dense.shape[0]
    if dense.shape[0] != dense.shape[1]:
        raise ValueError("sign iteration requires a square matrix")
    if hamiltonian is None:
        hamiltonian = dense
    else:
        hamiltonian = as_dense(hamiltonian)
        if hamiltonian.shape != dense.shape:
            raise ValueError("hamiltonian must have the same shape as the matrix")

    shifted = dense - mu * np.eye(n)
    scale = spectral_scale_estimate(shifted)
    x64 = shifted / scale
    coefficients = pade_polynomial_coefficients(order)

    x = convert(x64, mode)
    identity = np.eye(n, dtype=mode.storage_dtype)
    energies: List[float] = []
    involutority: List[float] = []
    flops = 0.0
    for _ in range(n_iterations):
        x_squared = gemm(x, x, mode)
        flops += 2.0 * n**3
        poly = (coefficients[-1] * identity).astype(mode.storage_dtype)
        for coefficient in coefficients[-2::-1]:
            poly = gemm(poly, x_squared, mode) + (
                coefficient * identity
            ).astype(mode.storage_dtype)
            flops += 2.0 * n**3
        x = gemm(x, poly, mode)
        flops += 2.0 * n**3
        # diagnostics in float64
        x_as64 = x.astype(np.float64)
        density = 0.5 * (np.eye(n) - x_as64)
        energy = float(spin_degeneracy * np.tensordot(density, hamiltonian.T, axes=2))
        energies.append(energy)
        involutority.append(float(np.linalg.norm(x_as64 @ x_as64 - np.eye(n))))
    return MixedPrecisionSignResult(
        mode=mode,
        sign=x.astype(np.float64),
        energies=energies,
        involutority=involutority,
        iterations=n_iterations,
        flops=flops,
    )
