"""2nd-order Newton–Schulz sign iteration (Eq. 11 of the paper).

    X_0 = A / ||A||,     X_{k+1} = 1/2 · X_k (3 I − X_k²)

The iteration converges quadratically to sign(A) for matrices without purely
imaginary eigenvalues.  CP2K uses it (on DBCSR sparse matrices, with element
filtering after every multiplication) as the default algorithm for
grand-canonical linear-scaling DFT; it is the baseline the submatrix method
is compared against in the paper's Figs. 6, 7 and 10.

Two variants are provided:

* :func:`sign_newton_schulz` — dense, used for reference results and for
  solving individual submatrices;
* :func:`sign_newton_schulz_sparse` — operates on ``scipy.sparse`` matrices
  and filters elements below ``eps_filter`` after every iteration, which
  mirrors the CP2K behaviour where the filtering threshold also serves as
  the convergence criterion (Sec. V-A).  It records the number of
  floating-point operations actually performed on the retained non-zeros so
  that the distributed cost model can reuse the measurement.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.signfn.utils import as_dense, involutority_error, spectral_scale_estimate

__all__ = [
    "NewtonSchulzResult",
    "BatchedNewtonSchulzResult",
    "sign_newton_schulz",
    "sign_newton_schulz_batched",
    "refine_sign_newton_schulz_batched",
    "sign_newton_schulz_sparse",
    "sign_newton_schulz_filtered_dense",
]


@dataclasses.dataclass
class NewtonSchulzResult:
    """Result of a Newton–Schulz sign iteration.

    Attributes
    ----------
    sign:
        The converged (or last) iterate.
    iterations:
        Number of iterations performed.
    converged:
        Whether the convergence criterion was met.
    residual_history:
        Frobenius norm of the update ||X_{k+1} − X_k||_F per iteration.
    involutority_history:
        ||X_k² − I||_F per iteration (only filled when requested).
    flops:
        Floating-point operations spent in matrix multiplications.
    nnz_history:
        Number of stored non-zeros per iteration (sparse variant only).
    """

    sign: Union[np.ndarray, sp.csr_matrix]
    iterations: int
    converged: bool
    residual_history: List[float]
    involutority_history: List[float]
    flops: float
    nnz_history: List[int]


def sign_newton_schulz(
    matrix: Union[np.ndarray, sp.spmatrix],
    convergence_threshold: float = 1e-10,
    max_iterations: int = 100,
    track_involutority: bool = False,
) -> NewtonSchulzResult:
    """Dense 2nd-order Newton–Schulz iteration for sign(A).

    Parameters
    ----------
    matrix:
        Square matrix without eigenvalues on the imaginary axis.
    convergence_threshold:
        The iteration stops when ||X_{k+1} − X_k||_F / sqrt(n) falls below
        this threshold.
    max_iterations:
        Hard iteration cap.
    track_involutority:
        Record ||X² − I||_F each iteration (used by the precision study).
    """
    x = as_dense(matrix).copy()
    n = x.shape[0]
    if x.shape[0] != x.shape[1]:
        raise ValueError("sign function requires a square matrix")
    scale = spectral_scale_estimate(x)
    x /= scale
    identity = np.eye(n)
    residual_history: List[float] = []
    involutority_history: List[float] = []
    flops = 0.0
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        x_squared = x @ x
        update = 0.5 * (x @ (3.0 * identity - x_squared))
        flops += 2.0 * (2.0 * n**3)
        residual = float(np.linalg.norm(update - x)) / np.sqrt(n)
        residual_history.append(residual)
        x = update
        if track_involutority:
            involutority_history.append(involutority_error(x))
        if residual < convergence_threshold:
            converged = True
            break
    return NewtonSchulzResult(
        sign=x,
        iterations=iterations,
        converged=converged,
        residual_history=residual_history,
        involutority_history=involutority_history,
        flops=flops,
        nnz_history=[],
    )


@dataclasses.dataclass
class BatchedNewtonSchulzResult:
    """Result of a batched Newton–Schulz sign iteration.

    Attributes
    ----------
    sign:
        ``(k, n, n)`` stack of converged (or last) iterates.
    iterations:
        Per-matrix iteration counts, shape ``(k,)``.
    converged:
        Per-matrix convergence flags, shape ``(k,)``.
    """

    sign: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray


def sign_newton_schulz_batched(
    stack: np.ndarray,
    convergence_threshold: float = 1e-10,
    max_iterations: int = 100,
    xp=None,
) -> BatchedNewtonSchulzResult:
    """2nd-order Newton–Schulz iteration on a ``(k, n, n)`` stack.

    Batched counterpart of :func:`sign_newton_schulz` for the bucketed batch
    evaluator: each matrix is prescaled by its own spectral-radius bound and
    iterated with stacked GEMMs, so one Python-level loop drives all ``k``
    iterations simultaneously.  A matrix is frozen as soon as its own
    residual ``||X_{k+1} − X_k||_F / sqrt(n)`` drops below the threshold,
    which makes the per-matrix iterate sequences identical to the unbatched
    routine.

    Allocation and GEMMs route through the :class:`~repro.backend.base.
    ArrayBackend` ``xp`` (default: the ``"numpy"`` backend, whose methods
    are the identical NumPy calls this function made before the seam
    existed — the default path is bitwise unchanged).  With a reduced-
    precision backend the iterate lives in the mode's storage dtype and
    every product goes through the backend's GEMM; residuals are always
    measured in float64 so the freeze logic never sees a reduced-precision
    overflow.
    """
    if xp is None:
        from repro.backend.base import NUMPY_BACKEND

        xp = NUMPY_BACKEND
    x = xp.array(stack)
    if x.ndim != 3 or x.shape[-1] != x.shape[-2]:
        raise ValueError("expected a (k, n, n) stack of square matrices")
    count, n, _ = x.shape
    abs_x = np.abs(x)
    one_norm = abs_x.sum(axis=1).max(axis=1)
    inf_norm = abs_x.sum(axis=2).max(axis=1)
    scale = np.sqrt(one_norm * inf_norm)
    scale[scale == 0.0] = 1.0
    x /= scale[:, None, None]
    identity = xp.eye(n)
    iterations = np.zeros(count, dtype=int)
    converged = np.zeros(count, dtype=bool)
    active = np.arange(count)
    for _ in range(max_iterations):
        if active.size == 0:
            break
        xa = x[active]
        x_squared = xp.matmul(xa, xa)
        update = 0.5 * xp.matmul(xa, 3.0 * identity - x_squared)
        residual = np.linalg.norm(
            np.asarray(update - xa, dtype=np.float64), axis=(1, 2)
        ) / np.sqrt(n)
        x[active] = update
        iterations[active] += 1
        done = residual < convergence_threshold
        converged[active[done]] = True
        active = active[~done]
    return BatchedNewtonSchulzResult(
        sign=x, iterations=iterations, converged=converged
    )


def refine_sign_newton_schulz_batched(
    initial: np.ndarray,
    convergence_threshold: float = 1e-10,
    max_iterations: int = 30,
) -> BatchedNewtonSchulzResult:
    """Warm-started FP64 Newton–Schulz continuation from a sign estimate.

    The refinement pass of the mixed-precision policy: ``initial`` is a
    ``(k, n, n)`` stack of approximate sign matrices (the FP64-cast result
    of a reduced-precision solve, eigenvalues ±1 + noise), which sits well
    inside the quadratic convergence basin of the Newton–Schulz map — no
    prescaling is applied, and a handful of FP64 iterations push the
    involutority residual from the reduced mode's noise floor down to
    ``convergence_threshold``.  The per-matrix freeze logic matches
    :func:`sign_newton_schulz_batched`, so refined matrices are independent
    of the stack composition.
    """
    x = np.array(initial, dtype=float)
    if x.ndim != 3 or x.shape[-1] != x.shape[-2]:
        raise ValueError("expected a (k, n, n) stack of square matrices")
    count, n, _ = x.shape
    identity = np.eye(n)
    iterations = np.zeros(count, dtype=int)
    converged = np.zeros(count, dtype=bool)
    active = np.arange(count)
    for _ in range(max_iterations):
        if active.size == 0:
            break
        xa = x[active]
        x_squared = xa @ xa
        update = 0.5 * (xa @ (3.0 * identity - x_squared))
        residual = np.linalg.norm(update - xa, axis=(1, 2)) / np.sqrt(n)
        x[active] = update
        iterations[active] += 1
        done = residual < convergence_threshold
        converged[active[done]] = True
        active = active[~done]
    return BatchedNewtonSchulzResult(
        sign=x, iterations=iterations, converged=converged
    )


def sign_newton_schulz_sparse(
    matrix: sp.spmatrix,
    eps_filter: float = 1e-7,
    convergence_threshold: Optional[float] = None,
    max_iterations: int = 100,
) -> NewtonSchulzResult:
    """Sparse (filtered) 2nd-order Newton–Schulz iteration for sign(A).

    This is the CP2K-style baseline: the iterate stays in sparse storage and
    elements below ``eps_filter`` are dropped after every multiplication.
    The convergence criterion defaults to the filtering threshold, as in
    CP2K (Sec. V-A: "For the Newton-Schulz iteration scheme, eps_filter also
    determines the convergence criterion").

    Parameters
    ----------
    matrix:
        Sparse symmetric matrix (CSR recommended).
    eps_filter:
        Truncation threshold applied after every multiplication.
    convergence_threshold:
        Convergence threshold on ||X_{k+1} − X_k||_F / sqrt(n); defaults to
        ``eps_filter``.
    max_iterations:
        Hard iteration cap.
    """
    if not sp.issparse(matrix):
        raise TypeError("sign_newton_schulz_sparse expects a scipy.sparse matrix")
    if matrix.shape[0] != matrix.shape[1]:
        raise ValueError("sign function requires a square matrix")
    if convergence_threshold is None:
        convergence_threshold = eps_filter
    n = matrix.shape[0]
    x = matrix.tocsr().astype(float)
    scale = spectral_scale_estimate(x)
    x = x / scale
    identity = sp.identity(n, format="csr")
    residual_history: List[float] = []
    nnz_history: List[int] = []
    flops = 0.0
    converged = False
    iterations = 0

    def _filter(m: sp.csr_matrix) -> sp.csr_matrix:
        if eps_filter > 0.0:
            m = m.copy()
            m.data[np.abs(m.data) < eps_filter] = 0.0
            m.eliminate_zeros()
        return m

    for iterations in range(1, max_iterations + 1):
        # FLOP accounting: a sparse product A*B costs 2 * sum_k nnz(A_{:,k}) * nnz(B_{k,:})
        x_csc = x.tocsc()
        col_counts = np.diff(x_csc.indptr)
        row_counts = np.diff(x.indptr)
        flops += 2.0 * float(np.dot(col_counts, row_counts))
        x_squared = _filter((x @ x).tocsr())
        inner = 3.0 * identity - x_squared
        col_counts_inner = np.diff(inner.tocsc().indptr)
        flops += 2.0 * float(np.dot(np.diff(x.tocsc().indptr), np.diff(inner.indptr)))
        update = _filter((0.5 * (x @ inner)).tocsr())
        residual = float(sp.linalg.norm(update - x)) / np.sqrt(n)
        residual_history.append(residual)
        nnz_history.append(int(update.nnz))
        x = update
        if residual < convergence_threshold:
            converged = True
            break
    return NewtonSchulzResult(
        sign=x,
        iterations=iterations,
        converged=converged,
        residual_history=residual_history,
        involutority_history=[],
        flops=flops,
        nnz_history=nnz_history,
    )


def sign_newton_schulz_filtered_dense(
    matrix: Union[np.ndarray, sp.spmatrix],
    eps_filter: float = 1e-7,
    convergence_threshold: Optional[float] = None,
    max_iterations: int = 100,
) -> NewtonSchulzResult:
    """Filtered Newton–Schulz iteration executed with dense BLAS kernels.

    Numerically this performs exactly the same computation as
    :func:`sign_newton_schulz_sparse` — the iterate is truncated at
    ``eps_filter`` after every iteration, and the convergence criterion
    defaults to the filter threshold — but the matrix products are evaluated
    as dense GEMMs.  For the scaled-down benchmark systems of this
    reproduction the filtered iterates are not sparse enough for
    ``scipy.sparse`` products to win over BLAS, so the accuracy benchmarks
    (Figs. 1, 6, 7) use this variant for the Newton–Schulz baseline; the
    FLOP accounting still reports the *sparse* operation count (operations on
    retained non-zeros), which is the quantity the distributed cost model
    needs.

    Returns a :class:`NewtonSchulzResult` whose ``sign`` is a CSR matrix, so
    the function is a drop-in replacement for the sparse variant.
    """
    if convergence_threshold is None:
        convergence_threshold = eps_filter
    dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix, dtype=float)
    if dense.shape[0] != dense.shape[1]:
        raise ValueError("sign function requires a square matrix")
    n = dense.shape[0]
    scale = spectral_scale_estimate(dense)
    x = dense / scale
    identity = np.eye(n)
    residual_history: List[float] = []
    nnz_history: List[int] = []
    flops = 0.0
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        col_nnz = np.count_nonzero(x, axis=0).astype(float)
        row_nnz = np.count_nonzero(x, axis=1).astype(float)
        flops += 2.0 * float(np.dot(col_nnz, row_nnz))
        x_squared = x @ x
        if eps_filter > 0.0:
            x_squared = np.where(np.abs(x_squared) >= eps_filter, x_squared, 0.0)
        inner = 3.0 * identity - x_squared
        flops += 2.0 * float(
            np.dot(np.count_nonzero(x, axis=0), np.count_nonzero(inner, axis=1))
        )
        update = 0.5 * (x @ inner)
        if eps_filter > 0.0:
            update = np.where(np.abs(update) >= eps_filter, update, 0.0)
        residual = float(np.linalg.norm(update - x)) / np.sqrt(n)
        residual_history.append(residual)
        nnz_history.append(int(np.count_nonzero(update)))
        x = update
        if residual < convergence_threshold:
            converged = True
            break
    return NewtonSchulzResult(
        sign=sp.csr_matrix(x),
        iterations=iterations,
        converged=converged,
        residual_history=residual_history,
        involutority_history=[],
        flops=flops,
        nnz_history=nnz_history,
    )
