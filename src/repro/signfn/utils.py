"""Shared helpers for the sign-function iterations.

The Newton–Schulz and Padé iterations converge only when the spectral radius
of the iterate stays below sqrt(3) (2nd order) / within the basin of the
fixed points ±1, so the input matrix is prescaled by an upper bound of its
spectral radius.  CP2K uses cheap norm bounds for the same purpose.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

__all__ = ["spectral_scale_estimate", "involutority_error", "as_dense"]


def as_dense(matrix: Union[np.ndarray, sp.spmatrix]) -> np.ndarray:
    """Return a dense float array view/copy of ``matrix``."""
    if sp.issparse(matrix):
        return matrix.toarray()
    return np.asarray(matrix, dtype=float)


def spectral_scale_estimate(matrix: Union[np.ndarray, sp.spmatrix]) -> float:
    """Upper bound of the spectral radius used to prescale sign iterations.

    Uses the geometric mean of the 1-norm and the infinity-norm, which bounds
    the spectral radius from above for any matrix and is cheap to evaluate on
    sparse storage (this is the standard prescaling of Newton–Schulz-type
    iterations, also used by CP2K).
    """
    if sp.issparse(matrix):
        abs_matrix = abs(matrix)
        one_norm = float(abs_matrix.sum(axis=0).max())
        inf_norm = float(abs_matrix.sum(axis=1).max())
    else:
        dense = np.abs(np.asarray(matrix, dtype=float))
        one_norm = float(dense.sum(axis=0).max())
        inf_norm = float(dense.sum(axis=1).max())
    bound = np.sqrt(one_norm * inf_norm)
    if bound == 0.0:
        return 1.0
    return bound


def involutority_error(matrix: Union[np.ndarray, sp.spmatrix]) -> float:
    """Frobenius norm of X² − I, the paper's convergence measure (Fig. 13).

    The exact sign function is involutory (sign(A)² = I); the deviation from
    involutority measures how far an iterate is from convergence and, in
    reduced precision, the attainable noise floor.
    """
    if sp.issparse(matrix):
        n = matrix.shape[0]
        residual = (matrix @ matrix - sp.identity(n, format=matrix.format)).toarray()
        return float(np.linalg.norm(residual))
    dense = np.asarray(matrix, dtype=float)
    n = dense.shape[0]
    residual = dense @ dense - np.eye(n)
    return float(np.linalg.norm(residual))
