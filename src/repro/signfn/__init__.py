"""Matrix sign function algorithms and related matrix functions.

Four families of algorithms are provided:

* the 2nd-order Newton–Schulz iteration (Eq. 11) — CP2K's default for
  grand-canonical linear-scaling DFT and the baseline in the evaluation —
  in dense and sparse (filtered) variants (:mod:`repro.signfn.newton_schulz`);
* higher-order Padé-style iterations (Eq. 19 for the 3rd order) used for the
  GPU/FPGA exploration (:mod:`repro.signfn.pade`);
* the eigendecomposition-based evaluation with the sign(0) = 0 extension
  (Eq. 12) and its finite-temperature generalization via the Fermi function,
  which the paper found superior for the dense submatrices
  (:mod:`repro.signfn.eigen`);
* a Chebyshev polynomial expansion of the erf-smoothed sign — GEMM-only
  and diagonalization-free, a different accuracy/cost point than the sign
  iterations and a natural reduced-precision candidate
  (:mod:`repro.signfn.chebyshev`).

:mod:`repro.signfn.inverse_root` implements the inverse p-th roots of the
original submatrix-method publication, and :mod:`repro.signfn.utils` the
shared spectral-scaling and convergence helpers.
"""

from repro.signfn.chebyshev import (
    BatchedChebyshevResult,
    ChebyshevSignResult,
    chebyshev_sign_coefficients,
    sign_chebyshev,
    sign_chebyshev_batched,
)
from repro.signfn.newton_schulz import (
    BatchedNewtonSchulzResult,
    NewtonSchulzResult,
    sign_newton_schulz,
    sign_newton_schulz_batched,
    sign_newton_schulz_filtered_dense,
    sign_newton_schulz_sparse,
)
from repro.signfn.pade import pade_polynomial_coefficients, sign_pade, PadeResult
from repro.signfn.eigen import (
    sign_via_eigendecomposition,
    sign_via_eigendecomposition_batched,
    occupation_function_via_eigendecomposition,
    occupation_function_via_eigendecomposition_batched,
)
from repro.signfn.inverse_root import inverse_pth_root, inverse_pth_root_newton
from repro.signfn.utils import involutority_error, spectral_scale_estimate
from repro.signfn.registry import (
    BoundKernel,
    DEFAULT_SIGN_MAX_ITERATIONS,
    KernelConvergenceError,
    MatrixFunction,
    SIGN_SOLVERS,
    UnknownKernelError,
    available_kernels,
    get_kernel,
    register_callable,
    register_kernel,
    resilient_stack_solver,
    resolve_kernel,
)

__all__ = [
    "BatchedChebyshevResult",
    "ChebyshevSignResult",
    "chebyshev_sign_coefficients",
    "sign_chebyshev",
    "sign_chebyshev_batched",
    "NewtonSchulzResult",
    "BatchedNewtonSchulzResult",
    "sign_newton_schulz",
    "sign_newton_schulz_batched",
    "sign_newton_schulz_filtered_dense",
    "sign_newton_schulz_sparse",
    "pade_polynomial_coefficients",
    "sign_pade",
    "PadeResult",
    "sign_via_eigendecomposition",
    "sign_via_eigendecomposition_batched",
    "occupation_function_via_eigendecomposition",
    "occupation_function_via_eigendecomposition_batched",
    "inverse_pth_root",
    "inverse_pth_root_newton",
    "involutority_error",
    "spectral_scale_estimate",
    "MatrixFunction",
    "BoundKernel",
    "UnknownKernelError",
    "KernelConvergenceError",
    "SIGN_SOLVERS",
    "DEFAULT_SIGN_MAX_ITERATIONS",
    "register_kernel",
    "register_callable",
    "get_kernel",
    "available_kernels",
    "resilient_stack_solver",
    "resolve_kernel",
]
