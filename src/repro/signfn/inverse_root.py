"""Inverse p-th roots of symmetric positive-definite matrices.

The submatrix method was originally proposed for the approximate computation
of inverse p-th roots A^{-1/p} of large sparse matrices (reference [8] of the
paper).  The sign function is related through sign(A) = A (A²)^{-1/2}
(Eq. 8).  Implementing the inverse roots serves two purposes in this
reproduction: it demonstrates that the submatrix machinery is generic in the
evaluated matrix function, and it provides an independent correctness check
for the submatrix method against a second, well-conditioned matrix function.
"""

from __future__ import annotations

import dataclasses
from typing import List, Union

import numpy as np
import scipy.sparse as sp

from repro.signfn.utils import as_dense

__all__ = ["inverse_pth_root", "inverse_pth_root_newton", "InverseRootResult"]


def inverse_pth_root(
    matrix: Union[np.ndarray, sp.spmatrix],
    p: int = 2,
    min_eigenvalue: float = 1e-12,
) -> np.ndarray:
    """A^{-1/p} of a symmetric positive-definite matrix via eigendecomposition.

    Parameters
    ----------
    matrix:
        Symmetric positive-definite matrix.
    p:
        Root order (p = 2 gives the inverse square root used in Löwdin
        orthogonalization and in the definition of the sign function).
    min_eigenvalue:
        Eigenvalues below this threshold raise an error.
    """
    if p < 1:
        raise ValueError("p must be a positive integer")
    dense = as_dense(matrix)
    dense = 0.5 * (dense + dense.T)
    eigenvalues, eigenvectors = np.linalg.eigh(dense)
    if eigenvalues.min() < min_eigenvalue:
        raise ValueError(
            f"matrix is not positive definite (min eigenvalue "
            f"{eigenvalues.min():.3e})"
        )
    powered = eigenvalues ** (-1.0 / p)
    return (eigenvectors * powered) @ eigenvectors.T


@dataclasses.dataclass
class InverseRootResult:
    """Result of the iterative inverse p-th root computation."""

    root: np.ndarray
    iterations: int
    converged: bool
    residual_history: List[float]


def inverse_pth_root_newton(
    matrix: Union[np.ndarray, sp.spmatrix],
    p: int = 2,
    convergence_threshold: float = 1e-12,
    max_iterations: int = 200,
) -> InverseRootResult:
    """Newton-type iteration for A^{-1/p} (Altman/Bini-style).

    Uses the coupled iteration

        X_{k+1} = X_k ((p+1) I − M_k) / p,    M_{k+1} = ((p+1) I − M_k)^p M_k / p^p

    with X_0 = I / s, M_0 = A / s (s a norm-based scaling), which converges to
    X → A^{-1/p} for symmetric positive-definite A.  This is the kind of
    multiplication-only iteration the original submatrix-method paper used on
    its target hardware.
    """
    if p < 1:
        raise ValueError("p must be a positive integer")
    dense = as_dense(matrix)
    dense = 0.5 * (dense + dense.T)
    n = dense.shape[0]
    identity = np.eye(n)
    # scale so that the spectrum of M_0 lies in (0, 1]
    scale = float(np.linalg.norm(dense, ord=2))
    if scale <= 0:
        raise ValueError("matrix must be non-zero")
    x = identity / scale ** (1.0 / p)
    m = dense / scale
    residual_history: List[float] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        t = ((p + 1) * identity - m) / p
        x = x @ t
        m = np.linalg.matrix_power(t, p) @ m
        residual = float(np.linalg.norm(m - identity)) / np.sqrt(n)
        residual_history.append(residual)
        if residual < convergence_threshold:
            converged = True
            break
    return InverseRootResult(
        root=x,
        iterations=iterations,
        converged=converged,
        residual_history=residual_history,
    )
