"""Eigendecomposition-based sign function and occupation functions.

For the dense submatrices the paper evaluates the sign function through a
symmetric eigendecomposition (Sec. IV-F, Eq. 17):

    A = Q Λ Qᵀ,   sign(A) = Q signum(Λ) Qᵀ,

with the extension signum(0) = 0 (Eq. 12), which is consistent with the
zero-temperature limit of the Fermi function (Eq. 13).  Replacing the signum
by the Fermi function directly yields finite-temperature occupations, and
keeping Q and Λ around allows the chemical potential to be adjusted without
recomputing the decomposition (Algorithm 1, implemented in
:mod:`repro.core.sign_dft`).
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.signfn.utils import as_dense

__all__ = [
    "extended_signum",
    "sign_via_eigendecomposition",
    "occupation_function_via_eigendecomposition",
    "symmetric_eigendecomposition",
    "symmetric_eigendecomposition_batched",
    "sign_via_eigendecomposition_batched",
    "occupation_function_via_eigendecomposition_batched",
]


def extended_signum(values: np.ndarray, zero_tolerance: float = 0.0) -> np.ndarray:
    """Signum with the paper's extension signum(0) = 0 (Eq. 12).

    Values within ``zero_tolerance`` of zero are mapped to exactly 0, which
    corresponds to half occupation of states exactly at the chemical
    potential.
    """
    values = np.asarray(values, dtype=float)
    result = np.sign(values)
    if zero_tolerance > 0.0:
        result[np.abs(values) <= zero_tolerance] = 0.0
    return result


def symmetric_eigendecomposition(
    matrix: Union[np.ndarray, sp.spmatrix],
    symmetry_tolerance: float = 1e-8,
) -> Tuple[np.ndarray, np.ndarray]:
    """Eigendecomposition of a symmetric matrix (dsyevd equivalent).

    Returns (eigenvalues, eigenvectors).  Raises if the matrix is not
    symmetric within ``symmetry_tolerance`` — the paper guarantees symmetry
    of the sign-function argument by using Löwdin orthogonalization
    (Sec. IV-F) precisely so that this decomposition is applicable.
    """
    dense = as_dense(matrix)
    if dense.shape[0] != dense.shape[1]:
        raise ValueError("eigendecomposition requires a square matrix")
    asymmetry = float(np.max(np.abs(dense - dense.T))) if dense.size else 0.0
    if asymmetry > symmetry_tolerance:
        raise ValueError(
            f"matrix is not symmetric (max asymmetry {asymmetry:.3e} exceeds "
            f"{symmetry_tolerance:.0e})"
        )
    eigenvalues, eigenvectors = np.linalg.eigh(0.5 * (dense + dense.T))
    return eigenvalues, eigenvectors


def sign_via_eigendecomposition(
    matrix: Union[np.ndarray, sp.spmatrix],
    mu: float = 0.0,
    zero_tolerance: float = 0.0,
) -> np.ndarray:
    """sign(A − μI) via symmetric eigendecomposition (Eq. 17).

    Parameters
    ----------
    matrix:
        Symmetric matrix A.
    mu:
        Shift (chemical potential); the sign of A − μI is returned.
    zero_tolerance:
        Eigenvalues within this distance of μ are treated as exactly at the
        chemical potential and mapped to 0 (Eq. 12).
    """
    eigenvalues, eigenvectors = symmetric_eigendecomposition(matrix)
    signs = extended_signum(eigenvalues - mu, zero_tolerance)
    return (eigenvectors * signs) @ eigenvectors.T


def symmetric_eigendecomposition_batched(
    stack: np.ndarray,
    symmetry_tolerance: float = 1e-8,
    xp=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Eigendecomposition of a ``(k, n, n)`` stack of symmetric matrices.

    One C-level loop over the stack (``numpy.linalg.eigh`` broadcasts over
    leading axes) instead of ``k`` Python calls; used by the bucketed batch
    evaluator of the submatrix engine.  Returns ``(eigenvalues, eigenvectors)``
    of shapes ``(k, n)`` and ``(k, n, n)``.

    The decomposition routes through the :class:`~repro.backend.base.
    ArrayBackend` ``xp`` (default: the ``"numpy"`` backend, whose ``eigh``
    *is* ``numpy.linalg.eigh`` — the default path is bitwise unchanged);
    the symmetry check always runs in float64.
    """
    if xp is None:
        from repro.backend.base import NUMPY_BACKEND

        xp = NUMPY_BACKEND
    stack = np.asarray(stack, dtype=float)
    if stack.ndim != 3 or stack.shape[-1] != stack.shape[-2]:
        raise ValueError("expected a (k, n, n) stack of square matrices")
    transposed = np.swapaxes(stack, -1, -2)
    asymmetry = float(np.max(np.abs(stack - transposed))) if stack.size else 0.0
    if asymmetry > symmetry_tolerance:
        raise ValueError(
            f"stack is not symmetric (max asymmetry {asymmetry:.3e} exceeds "
            f"{symmetry_tolerance:.0e})"
        )
    return xp.eigh(xp.asarray(0.5 * (stack + transposed)))


def _reconstruct_batched(
    eigenvectors: np.ndarray, diagonal: np.ndarray, xp=None
) -> np.ndarray:
    """Batched Q·diag(d)·Qᵀ for a stack of decompositions."""
    if xp is None:
        from repro.backend.base import NUMPY_BACKEND

        xp = NUMPY_BACKEND
    return xp.matmul(
        eigenvectors * diagonal[:, None, :], np.swapaxes(eigenvectors, -1, -2)
    )


def sign_via_eigendecomposition_batched(
    stack: np.ndarray,
    mu: float = 0.0,
    zero_tolerance: float = 0.0,
    xp=None,
) -> np.ndarray:
    """sign(A − μI) for every matrix of a ``(k, n, n)`` stack (Eq. 17).

    Batched counterpart of :func:`sign_via_eigendecomposition`; one call
    evaluates the whole stack.  ``xp`` routes the decomposition and the
    reconstruction GEMM through an array backend (default: bitwise-identical
    NumPy).
    """
    eigenvalues, eigenvectors = symmetric_eigendecomposition_batched(stack, xp=xp)
    signs = extended_signum(eigenvalues - mu, zero_tolerance)
    return _reconstruct_batched(eigenvectors, signs, xp=xp)


def occupation_function_via_eigendecomposition_batched(
    stack: np.ndarray,
    mu: float = 0.0,
    temperature: float = 0.0,
    xp=None,
) -> np.ndarray:
    """Occupation matrices f(A) = Q f(Λ − μ) Qᵀ for a ``(k, n, n)`` stack.

    Batched counterpart of
    :func:`occupation_function_via_eigendecomposition`.
    """
    from repro.chem.density import fermi_occupation

    eigenvalues, eigenvectors = symmetric_eigendecomposition_batched(stack, xp=xp)
    occupations = fermi_occupation(eigenvalues, mu, temperature)
    return _reconstruct_batched(eigenvectors, occupations, xp=xp)


def occupation_function_via_eigendecomposition(
    matrix: Union[np.ndarray, sp.spmatrix],
    mu: float = 0.0,
    temperature: float = 0.0,
) -> np.ndarray:
    """Occupation matrix f(A) = Q f(Λ − μ) Qᵀ with Fermi occupations.

    At ``temperature == 0`` this equals (I − sign(A − μI)) / 2 with the
    extended signum; at finite temperature the signum is replaced by the
    Fermi function, which is the paper's "generalization to finite
    temperatures with negligible additional effort" (Sec. VII).
    """
    from repro.chem.density import fermi_occupation

    eigenvalues, eigenvectors = symmetric_eigendecomposition(matrix)
    occupations = fermi_occupation(eigenvalues, mu, temperature)
    return (eigenvectors * occupations) @ eigenvectors.T
