"""Named matrix-function kernels — the single registry behind every solver string.

Before this module, three places validated matrix-function names with their
own ad-hoc string checks: :mod:`repro.core.method` (engine callables),
:mod:`repro.core.sign_dft` (``solver="eigen" | "newton_schulz" | "pade"``)
and the :mod:`repro.signfn` call sites that hard-wired one algorithm each.
The registry replaces all of them with one lookup: a
:class:`MatrixFunction` describes a named kernel (how to build the
per-matrix callable and, when available, the batched ``(k, d, d)`` variant
for the bucketed stack evaluator), :func:`get_kernel` resolves a name with a
"did you mean" suggestion on typos, and :func:`resolve_kernel` turns any
user-facing spec — a registered name, a :class:`MatrixFunction`, or a bare
callable — into a :class:`BoundKernel` ready for the submatrix engine.

Users plug their own kernels in with :func:`register_kernel` (a full
factory-based kernel) or :func:`register_callable` (a fixed elementwise or
blockwise callable); after registration the name works everywhere a built-in
does: ``SubmatrixContext.apply``, ``SubmatrixMethod``, the distributed
pipeline's :meth:`run` and the DFT solver's ``solver=`` (where custom sign
kernels run through the iterative occupation path; see
``MatrixFunction.supports_mu_bisection`` for the eigendecomposition-cache
contract).
"""

from __future__ import annotations

import dataclasses
import difflib
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.signfn.eigen import (
    occupation_function_via_eigendecomposition,
    occupation_function_via_eigendecomposition_batched,
    sign_via_eigendecomposition,
    sign_via_eigendecomposition_batched,
)
from repro.signfn.chebyshev import (
    DEFAULT_CHEBYSHEV_DEGREE,
    DEFAULT_CHEBYSHEV_SMOOTHING,
    sign_chebyshev,
    sign_chebyshev_batched,
)
from repro.signfn.newton_schulz import (
    sign_newton_schulz,
    sign_newton_schulz_batched,
)
from repro.signfn.pade import sign_pade

__all__ = [
    "MatrixFunction",
    "BoundKernel",
    "UnknownKernelError",
    "KernelConvergenceError",
    "register_kernel",
    "register_callable",
    "get_kernel",
    "available_kernels",
    "resolve_kernel",
    "resilient_stack_solver",
    "SIGN_SOLVERS",
    "DEFAULT_SIGN_MAX_ITERATIONS",
]

#: Iteration budget of the iterative sign kernels' first attempt; kernel
#: retries escalate it by ``ResiliencePolicy.kernel_retry_growth`` per round.
DEFAULT_SIGN_MAX_ITERATIONS = 100

#: The built-in per-submatrix sign solvers of the paper's ablation study.
#: The DFT solver accepts any registered matrix-function kernel; canonical
#: ensembles require one with ``supports_mu_bisection`` (Algorithm 1 reuses
#: the cached eigendecompositions during the μ-bisection).
SIGN_SOLVERS = ("eigen", "newton_schulz", "pade")


@dataclasses.dataclass(frozen=True)
class BoundKernel:
    """A kernel with its parameters already baked in.

    Attributes
    ----------
    name:
        Registry name (or the callable's name for ad-hoc functions).
    function:
        Per-matrix callable ``(d, d) -> (d, d)``.
    batch_function:
        Optional batched callable ``(k, d, d) -> (k, d, d)``; ``None`` falls
        back to one ``function`` call per stack slice.
    matrix_function:
        ``True`` for genuine (analytic) matrix functions, which the bucketed
        evaluator may pad block-diagonally; elementwise/blockwise callables
        must keep exact-dimension buckets.
    """

    name: str
    function: Callable[[np.ndarray], np.ndarray]
    batch_function: Optional[Callable[[np.ndarray], np.ndarray]] = None
    matrix_function: bool = True


@dataclasses.dataclass(frozen=True)
class MatrixFunction:
    """A named, parameterizable matrix-function kernel.

    Attributes
    ----------
    name:
        Registry name (e.g. ``"eigen"``).
    make:
        Factory ``make(**params)`` returning the per-matrix callable.
    make_batched:
        Optional factory returning the batched ``(k, d, d)`` callable.
    matrix_function:
        Whether the kernel is a genuine matrix function (padding-safe).
    iterative:
        ``True`` for kernels that evaluate f by an iteration on the
        (μ-shifted) matrix itself (Newton–Schulz, Padé) rather than through
        a spectral decomposition.  Iterative kernels cannot serve the
        canonical-ensemble μ-bisection (no cached spectra), but the density
        driver runs them rank-sharded through the distributed pipeline in
        the grand-canonical ensemble.
    shift_pad:
        Padding anchor of the bucketed stack evaluator for μ-shifted
        evaluations: a submatrix embedded block-diagonally *before* the
        shift ``A − μI`` uses ``shift_pad + μ`` on its padding diagonal, so
        the shifted padding eigenvalues sit at exactly ``shift_pad``.  The
        default 1.0 places them at the sign/occupation fixed point — well
        inside the Newton–Schulz/Padé convergence region and mapped to
        occupation 0, so the padded rows are exact and never reach the
        scatter.  See :meth:`padding_value`.
    make_checked_batched:
        Optional factory returning a *convergence-checked* batched callable
        ``checked(stack, max_iterations=...) -> (results, converged)`` with
        ``converged`` a per-matrix boolean array.  Iterative kernels
        provide it so the resilience layer
        (:func:`resilient_stack_solver`) can retry non-converged
        submatrices with an escalated iteration budget and fall back to a
        robust kernel per matrix — recorded, not raised.
    supports_mu_bisection:
        Declares the kernel *spectrally equivalent* to the built-in
        eigendecomposition evaluation: its result equals
        ``Q f(Λ − μ) Qᵀ`` with f the occupation/signum family.  The DFT
        density driver satisfies such kernels through its shared
        eigendecomposition cache (Algorithm 1) — including the rank-sharded
        canonical μ-search — **instead of calling the kernel's factories**,
        with μ and the electronic temperature taken from the session config.
        Leave it ``False`` for any kernel with different math; those run
        through the iterative sign path (grand-canonical only).
    supports_reduced_precision:
        Declares the kernel safe to run through the mixed-precision path of
        :class:`~repro.api.config.PrecisionPolicy`: its iteration tolerates
        reduced-precision arithmetic (tracking the involutority rather than
        the energy, Fig. 13) and its result is a sign stack an FP64
        Newton–Schulz refinement pass can polish.  Requires
        :attr:`make_reduced_batched`.
    make_reduced_batched:
        Optional factory ``make_reduced_batched(xp, convergence_threshold)``
        returning a batched callable ``(k, d, d) -> (k, d, d)`` that
        evaluates the sign of an *already μ-shifted* stack on the
        :class:`~repro.backend.base.ArrayBackend` ``xp`` with the given
        (noise-floor) convergence threshold.  The mixed-precision driver
        (:func:`repro.backend.mixed.solve_reduced_sign`) builds the emulated
        backend, calls this, and refines the estimate in FP64.
    description:
        One-line human-readable summary.
    """

    name: str
    make: Callable[..., Callable[[np.ndarray], np.ndarray]]
    make_batched: Optional[Callable[..., Callable[[np.ndarray], np.ndarray]]] = None
    matrix_function: bool = True
    iterative: bool = False
    shift_pad: float = 1.0
    supports_mu_bisection: bool = False
    description: str = ""
    make_checked_batched: Optional[Callable[..., Callable]] = None
    supports_reduced_precision: bool = False
    make_reduced_batched: Optional[Callable[..., Callable]] = None

    def padding_value(self, mu: float = 0.0) -> float:
        """Safe padding diagonal for a μ-shifted evaluation of this kernel.

        The bucketed stack evaluator embeds a small submatrix as
        ``blockdiag(a, p·I)`` *before* the caller applies the shift
        ``· − μI``; this returns the ``p`` for which the shifted padding
        eigenvalues land exactly on :attr:`shift_pad`.
        """
        return self.shift_pad + mu

    def bind(self, **params) -> BoundKernel:
        """Build the callables for one parameter set (e.g. ``mu=0.2``)."""
        function = self.make(**params)
        batch = self.make_batched(**params) if self.make_batched is not None else None
        return BoundKernel(
            name=self.name,
            function=function,
            batch_function=batch,
            matrix_function=self.matrix_function,
        )

    def bind_checked(self, **params) -> Optional[Callable]:
        """Build the convergence-checked batched callable (``None`` when
        the kernel does not provide one; see :attr:`make_checked_batched`)."""
        if self.make_checked_batched is None:
            return None
        return self.make_checked_batched(**params)


class UnknownKernelError(ValueError, TypeError):
    """Raised when a kernel name is not in the registry.

    Subclasses both :class:`ValueError` and :class:`TypeError` because the
    legacy call sites it unifies disagreed: ``SubmatrixDFTSolver`` raised
    ``ValueError`` for a bad solver string while ``SubmatrixMethod`` raised
    ``TypeError`` for a non-callable function spec — existing ``except`` /
    ``pytest.raises`` call sites of either kind keep working.
    """

    def __init__(self, name: str, known: List[str]):
        self.name = name
        self.known = list(known)
        suggestion = difflib.get_close_matches(name, known, n=1)
        hint = f"; did you mean {suggestion[0]!r}?" if suggestion else ""
        super().__init__(
            f"unknown matrix-function kernel {name!r}{hint} "
            f"(registered kernels: {', '.join(sorted(known))})"
        )


class KernelConvergenceError(RuntimeError):
    """An iterative kernel failed convergence with no fallback configured.

    Only raised when :class:`~repro.api.config.ResiliencePolicy` sets
    ``kernel_fallback=None``; with the default ``"eigen"`` fallback,
    non-convergence is recovered and *recorded* instead.
    """

    def __init__(self, kernel: str, n_failed: int, budget: int):
        self.kernel = kernel
        self.n_failed = int(n_failed)
        self.budget = int(budget)
        super().__init__(
            f"kernel {kernel!r}: {n_failed} submatrix solve(s) did not "
            f"converge within {budget} iterations and no fallback kernel "
            "is configured"
        )


_REGISTRY: Dict[str, MatrixFunction] = {}


def register_kernel(kernel: MatrixFunction, overwrite: bool = False) -> MatrixFunction:
    """Register ``kernel`` under its name; returns it for chaining."""
    if not isinstance(kernel, MatrixFunction):
        raise TypeError("register_kernel expects a MatrixFunction")
    if kernel.name in _REGISTRY and not overwrite:
        raise ValueError(
            f"kernel {kernel.name!r} is already registered "
            "(pass overwrite=True to replace it)"
        )
    _REGISTRY[kernel.name] = kernel
    return kernel


def register_callable(
    name: str,
    function: Callable[[np.ndarray], np.ndarray],
    batch_function: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    matrix_function: bool = False,
    iterative: bool = False,
    description: str = "",
    overwrite: bool = False,
) -> MatrixFunction:
    """Register a fixed elementwise/blockwise callable as a parameterless kernel.

    The callable is applied to each dense submatrix as-is.  Unless
    ``matrix_function=True`` the kernel is flagged as not padding-safe, so
    the batched engine keeps exact-dimension buckets for it.
    """
    if not callable(function):
        raise TypeError("function must be callable")

    def make(**params):
        if params:
            raise TypeError(
                f"kernel {name!r} accepts no parameters, got {sorted(params)}"
            )
        return function

    def make_batched(**params):
        if params:
            raise TypeError(
                f"kernel {name!r} accepts no parameters, got {sorted(params)}"
            )
        return batch_function

    return register_kernel(
        MatrixFunction(
            name=name,
            make=make,
            make_batched=make_batched if batch_function is not None else None,
            matrix_function=matrix_function,
            iterative=iterative,
            description=description,
        ),
        overwrite=overwrite,
    )


def get_kernel(name: str) -> MatrixFunction:
    """Look up a registered kernel by name (the one shared validation path)."""
    if not isinstance(name, str):
        raise TypeError(f"kernel name must be a string, got {type(name).__name__}")
    kernel = _REGISTRY.get(name)
    if kernel is None:
        raise UnknownKernelError(name, list(_REGISTRY))
    return kernel


def available_kernels() -> List[str]:
    """Sorted names of every registered kernel."""
    return sorted(_REGISTRY)


def resolve_kernel(
    spec,
    batch_function: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    **params,
) -> BoundKernel:
    """Turn a kernel spec into a :class:`BoundKernel`.

    ``spec`` may be a registered name, a :class:`MatrixFunction`, an already
    bound kernel, or a bare callable (treated as a matrix function, matching
    the legacy ``SubmatrixMethod(function)`` contract).  ``batch_function``
    overrides the kernel's batched variant; ``**params`` are forwarded to the
    kernel factories (e.g. ``mu=0.2``).
    """
    if isinstance(spec, BoundKernel):
        if params:
            raise TypeError("a BoundKernel has its parameters baked in already")
        if batch_function is not None:
            spec = dataclasses.replace(spec, batch_function=batch_function)
        return spec
    if isinstance(spec, MatrixFunction):
        bound = spec.bind(**params)
    elif isinstance(spec, str):
        bound = get_kernel(spec).bind(**params)
    elif callable(spec):
        if params:
            raise TypeError(
                "kernel parameters are only supported for registered kernels; "
                "bake them into the callable instead"
            )
        bound = BoundKernel(
            name=getattr(spec, "__name__", "callable"),
            function=spec,
            batch_function=None,
            matrix_function=True,
        )
    else:
        raise TypeError(
            "function must be a callable, a registered kernel name or a "
            f"MatrixFunction, got {type(spec).__name__}"
        )
    if batch_function is not None:
        bound = dataclasses.replace(bound, batch_function=batch_function)
    return bound


# --------------------------------------------------------------------------- #
# built-in kernels
# --------------------------------------------------------------------------- #
def _shift(matrix: np.ndarray, mu: float) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=float)
    if mu == 0.0:
        return matrix
    return matrix - mu * np.eye(matrix.shape[-1])


def _make_eigen(mu: float = 0.0, zero_tolerance: float = 0.0):
    return lambda a: sign_via_eigendecomposition(a, mu=mu, zero_tolerance=zero_tolerance)


def _make_eigen_batched(mu: float = 0.0, zero_tolerance: float = 0.0):
    return lambda stack: sign_via_eigendecomposition_batched(
        stack, mu=mu, zero_tolerance=zero_tolerance
    )


def _make_newton_schulz(mu: float = 0.0):
    return lambda a: sign_newton_schulz(_shift(a, mu)).sign


def _make_newton_schulz_batched(mu: float = 0.0):
    return lambda stack: sign_newton_schulz_batched(_shift(stack, mu)).sign


def _make_newton_schulz_checked(mu: float = 0.0):
    def checked(stack, max_iterations: int = DEFAULT_SIGN_MAX_ITERATIONS):
        result = sign_newton_schulz_batched(
            _shift(stack, mu), max_iterations=max_iterations
        )
        return result.sign, np.asarray(result.converged, dtype=bool)

    return checked


def _make_newton_schulz_reduced(xp, convergence_threshold: float):
    def reduced(stack):
        return sign_newton_schulz_batched(
            stack, convergence_threshold=convergence_threshold, xp=xp
        ).sign

    return reduced


def _make_pade(mu: float = 0.0, order: int = 3):
    return lambda a: sign_pade(_shift(a, mu), order=order).sign


def _make_pade_checked(mu: float = 0.0, order: int = 3):
    def checked(stack, max_iterations: int = DEFAULT_SIGN_MAX_ITERATIONS):
        stack = np.asarray(stack, dtype=float)
        signs = np.empty_like(stack)
        converged = np.zeros(stack.shape[0], dtype=bool)
        for slot in range(stack.shape[0]):
            result = sign_pade(
                _shift(stack[slot], mu), order=order, max_iterations=max_iterations
            )
            signs[slot] = result.sign
            converged[slot] = result.converged
        return signs, converged

    return checked


def _make_pade_reduced(xp, convergence_threshold: float):
    def reduced(stack):
        return np.stack(
            [
                np.asarray(
                    sign_pade(
                        stack[slot],
                        order=3,
                        convergence_threshold=convergence_threshold,
                        max_iterations=30,
                        track_involutority=False,
                        xp=xp,
                    ).sign,
                    dtype=float,
                )
                for slot in range(stack.shape[0])
            ]
        )

    return reduced


def _make_chebyshev(
    mu: float = 0.0,
    degree: int = DEFAULT_CHEBYSHEV_DEGREE,
    smoothing: float = DEFAULT_CHEBYSHEV_SMOOTHING,
):
    return lambda a: sign_chebyshev(
        _shift(a, mu), degree=degree, smoothing=smoothing
    ).sign


def _make_chebyshev_batched(
    mu: float = 0.0,
    degree: int = DEFAULT_CHEBYSHEV_DEGREE,
    smoothing: float = DEFAULT_CHEBYSHEV_SMOOTHING,
):
    return lambda stack: sign_chebyshev_batched(
        _shift(stack, mu), degree=degree, smoothing=smoothing
    ).sign


def _make_chebyshev_checked(
    mu: float = 0.0, smoothing: float = DEFAULT_CHEBYSHEV_SMOOTHING
):
    def checked(stack, max_iterations: int = DEFAULT_SIGN_MAX_ITERATIONS):
        # the resilience ladder's budget is an *iteration* count tuned for
        # the sign iterations; for a polynomial expansion it maps to series
        # terms, so the first attempt always gets the full default degree
        # and escalated retries extend the series beyond it
        result = sign_chebyshev_batched(
            _shift(stack, mu),
            degree=max(DEFAULT_CHEBYSHEV_DEGREE, int(max_iterations)),
            smoothing=smoothing,
        )
        return result.sign, np.asarray(result.converged, dtype=bool)

    return checked


def _make_chebyshev_reduced(xp, convergence_threshold: float):
    def reduced(stack):
        return sign_chebyshev_batched(
            stack, convergence_threshold=convergence_threshold, xp=xp
        ).sign

    return reduced


def _make_occupation(mu: float = 0.0, temperature: float = 0.0):
    return lambda a: occupation_function_via_eigendecomposition(
        a, mu=mu, temperature=temperature
    )


def _make_occupation_batched(mu: float = 0.0, temperature: float = 0.0):
    return lambda stack: occupation_function_via_eigendecomposition_batched(
        stack, mu=mu, temperature=temperature
    )


register_kernel(
    MatrixFunction(
        name="eigen",
        make=_make_eigen,
        make_batched=_make_eigen_batched,
        supports_mu_bisection=True,
        description="sign(A − μI) via dense symmetric eigendecomposition (Eq. 17)",
    )
)
register_kernel(
    MatrixFunction(
        name="newton_schulz",
        make=_make_newton_schulz,
        make_batched=_make_newton_schulz_batched,
        iterative=True,
        description="sign(A − μI) via the 2nd-order Newton–Schulz iteration (Eq. 11)",
        make_checked_batched=_make_newton_schulz_checked,
        supports_reduced_precision=True,
        make_reduced_batched=_make_newton_schulz_reduced,
    )
)
register_kernel(
    MatrixFunction(
        name="pade",
        make=_make_pade,
        iterative=True,
        description="sign(A − μI) via the higher-order Padé iteration (Eq. 19)",
        make_checked_batched=_make_pade_checked,
        supports_reduced_precision=True,
        make_reduced_batched=_make_pade_reduced,
    )
)
register_kernel(
    MatrixFunction(
        name="chebyshev",
        make=_make_chebyshev,
        make_batched=_make_chebyshev_batched,
        iterative=True,
        description=(
            "sign(A − μI) via Chebyshev expansion of the erf-smoothed sign "
            "(GEMM-only, diagonalization-free)"
        ),
        make_checked_batched=_make_chebyshev_checked,
        supports_reduced_precision=True,
        make_reduced_batched=_make_chebyshev_reduced,
    )
)
register_kernel(
    MatrixFunction(
        name="occupation",
        make=_make_occupation,
        make_batched=_make_occupation_batched,
        supports_mu_bisection=True,
        description="occupation matrix Q f(Λ − μ) Qᵀ (Fermi at T > 0, Eq. 13)",
    )
)


# --------------------------------------------------------------------------- #
# resilience: convergence retry and per-matrix fallback
# --------------------------------------------------------------------------- #
def resilient_stack_solver(kernel: MatrixFunction, policy=None, report=None, **params):
    """Sign-stack solver with convergence retry and per-matrix fallback.

    Returns a callable ``solve(shifted) -> signs`` over already μ-shifted
    ``(k, d, d)`` stacks, or ``None`` when resilience does not apply —
    no ``policy``, or a ``kernel`` without a convergence-checked batched
    variant (:attr:`MatrixFunction.make_checked_batched`) — in which case
    the caller should use the plain bound kernel.

    The solver's recovery ladder, per stack:

    1. **First attempt** with the default iteration budget
       (:data:`DEFAULT_SIGN_MAX_ITERATIONS`).  When the policy carries a
       :class:`~repro.parallel.faults.FaultInjector`, its ``"kernel"``
       site is consulted first and may cap the budget — the deterministic
       way to force a genuine non-convergence in tests.
    2. **Retries** (``policy.kernel_retries`` rounds): every non-converged
       matrix is restarted *from its original shifted values* with the
       budget scaled by ``policy.kernel_retry_growth`` per round.  Because
       the batched iterations prescale and freeze each matrix individually
       and stop at convergence, a retried matrix that converges produces
       exactly the iterates — hence bitwise the result — of a fault-free
       first attempt.
    3. **Fallback**: matrices still non-converged are evaluated by the
       ``policy.kernel_fallback`` kernel (default ``"eigen"``), recorded
       on ``report.kernel_fallbacks`` rather than raised.  With
       ``kernel_fallback=None`` a :class:`KernelConvergenceError` is
       raised instead.

    ``report`` is any object with ``kernel_retries``/``kernel_fallbacks``
    int attributes (e.g. :class:`~repro.core.runner.ResilienceReport`);
    ``**params`` are forwarded to the kernel factories.
    """
    if policy is None:
        return None
    checked = kernel.bind_checked(**params)
    if checked is None:
        return None
    fallback = None
    fallback_name = getattr(policy, "kernel_fallback", None)
    if fallback_name is not None:
        fallback = get_kernel(fallback_name).bind()
    injector = getattr(policy, "fault_injector", None)
    retries = int(getattr(policy, "kernel_retries", 0))
    growth = float(getattr(policy, "kernel_retry_growth", 4.0))

    def solve(shifted: np.ndarray) -> np.ndarray:
        shifted = np.asarray(shifted, dtype=float)
        budget = DEFAULT_SIGN_MAX_ITERATIONS
        cap = injector.kernel_cap(kernel.name) if injector is not None else None
        signs, converged = checked(
            shifted, max_iterations=budget if cap is None else cap
        )
        signs = np.asarray(signs, dtype=float)
        converged = np.asarray(converged, dtype=bool).reshape(shifted.shape[0])
        round_index = 0
        while not converged.all() and round_index < retries:
            round_index += 1
            pending = np.flatnonzero(~converged)
            budget = int(round(DEFAULT_SIGN_MAX_ITERATIONS * growth**round_index))
            redo_signs, redo_converged = checked(
                shifted[pending], max_iterations=budget
            )
            signs[pending] = np.asarray(redo_signs, dtype=float)
            converged[pending] = np.asarray(redo_converged, dtype=bool).reshape(
                pending.size
            )
            if report is not None:
                report.kernel_retries += int(pending.size)
        if not converged.all():
            pending = np.flatnonzero(~converged)
            if fallback is None:
                raise KernelConvergenceError(kernel.name, pending.size, budget)
            if fallback.batch_function is not None:
                signs[pending] = np.asarray(
                    fallback.batch_function(shifted[pending]), dtype=float
                )
            else:
                for index in pending:
                    signs[index] = np.asarray(
                        fallback.function(shifted[index]), dtype=float
                    )
            if report is not None:
                report.kernel_fallbacks += int(pending.size)
        return signs

    return solve
