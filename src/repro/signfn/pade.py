"""Higher-order Padé-style sign iterations.

The family of iterations

    X_{k+1} = X_k · Σ_{j=0}^{m} C(-1/2, j) (X_k² − I)^j

(with C the generalized binomial coefficient) converges to sign(A) with order
m+1.  The first member (m = 1) is the 2nd-order Newton–Schulz iteration of
Eq. 11; the second member (m = 2) is the third-order iteration of Eq. 19,

    X_{k+1} = 1/8 · X_k (15 I − 10 X_k² + 3 X_k⁴),

which the paper uses for the GPU tensor-core and FPGA implementations because
it needs only matrix multiplications and therefore maps directly onto GEMM
hardware.  Higher orders correspond to the arbitrary-order iterations of
Richters et al. referenced in Sec. II-B.
"""

from __future__ import annotations

import dataclasses
from math import comb
from typing import Callable, List, Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.signfn.utils import as_dense, involutority_error, spectral_scale_estimate

__all__ = ["pade_polynomial_coefficients", "sign_pade", "PadeResult"]


def _binomial_half(j: int) -> float:
    """Generalized binomial coefficient C(-1/2, j)."""
    # C(-1/2, j) = (-1)^j * C(2j, j) / 4^j
    return (-1.0) ** j * comb(2 * j, j) / 4.0**j


def pade_polynomial_coefficients(order: int) -> np.ndarray:
    """Polynomial coefficients of the order-``order`` sign iteration.

    Returns the coefficients ``a`` such that the iteration reads

        X_{k+1} = X_k · Σ_i  a[i] · (X_k²)^i .

    For ``order == 2`` this returns [3/2, -1/2] (Newton–Schulz, Eq. 11), for
    ``order == 3`` it returns [15/8, -10/8, 3/8] (Eq. 19).
    """
    if order < 2:
        raise ValueError("iteration order must be at least 2")
    m = order - 1
    # expand sum_j C(-1/2, j) (y - 1)^j in powers of y (y = X^2)
    coefficients = np.zeros(m + 1)
    for j in range(m + 1):
        cj = _binomial_half(j)
        # (y - 1)^j = sum_i C(j, i) y^i (-1)^(j-i)
        for i in range(j + 1):
            coefficients[i] += cj * comb(j, i) * (-1.0) ** (j - i)
    return coefficients


@dataclasses.dataclass
class PadeResult:
    """Result of a Padé-style sign iteration."""

    sign: np.ndarray
    iterations: int
    converged: bool
    residual_history: List[float]
    involutority_history: List[float]
    flops: float


def sign_pade(
    matrix: Union[np.ndarray, sp.spmatrix],
    order: int = 3,
    convergence_threshold: float = 1e-10,
    max_iterations: int = 100,
    track_involutority: bool = True,
    callback: Optional[Callable[[int, np.ndarray], None]] = None,
    xp=None,
) -> PadeResult:
    """Dense Padé-style sign iteration of the given convergence order.

    Parameters
    ----------
    matrix:
        Square matrix without purely imaginary eigenvalues.
    order:
        Convergence order (2 = Newton–Schulz, 3 = Eq. 19, ...).
    convergence_threshold:
        Stop when the involutority error ||X² − I||_F / sqrt(n) falls below
        this value.  The paper (Fig. 13) argues that the involutority — not
        the energy — is the appropriate convergence measure for the
        low-precision iterations.
    max_iterations:
        Hard iteration cap.
    track_involutority:
        Whether to keep the per-iteration involutority history.
    callback:
        Optional function called as ``callback(iteration, X)`` after every
        iteration; used by the precision study to record per-iteration
        energies.
    xp:
        :class:`~repro.backend.base.ArrayBackend` the iterate lives on and
        the GEMMs route through.  The default ``"numpy"`` backend delegates
        to the identical NumPy calls this function used before the seam
        existed, so the default path is bitwise unchanged; a reduced-
        precision backend keeps the iterate in storage dtype while the
        diagnostics (residual, involutority) stay float64.
    """
    if xp is None:
        from repro.backend.base import NUMPY_BACKEND

        xp = NUMPY_BACKEND
    coefficients = pade_polynomial_coefficients(order)
    x = xp.array(as_dense(matrix))
    n = x.shape[0]
    if x.shape[0] != x.shape[1]:
        raise ValueError("sign function requires a square matrix")
    scale = spectral_scale_estimate(x)
    x /= scale
    identity = xp.eye(n)
    residual_history: List[float] = []
    involutority_history: List[float] = []
    flops = 0.0
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        x_squared = xp.matmul(x, x)
        flops += 2.0 * n**3
        # evaluate the polynomial in X^2 by Horner's rule
        poly = coefficients[-1] * identity
        for coefficient in coefficients[-2::-1]:
            poly = xp.matmul(poly, x_squared) + coefficient * identity
            flops += 2.0 * n**3
        update = xp.matmul(x, poly)
        flops += 2.0 * n**3
        residual = float(
            np.linalg.norm(np.asarray(update - x, dtype=np.float64))
        ) / np.sqrt(n)
        residual_history.append(residual)
        x = update
        involutority = involutority_error(x) / np.sqrt(n)
        if track_involutority:
            involutority_history.append(float(involutority))
        if callback is not None:
            callback(iterations, x)
        if involutority < convergence_threshold:
            converged = True
            break
    return PadeResult(
        sign=x,
        iterations=iterations,
        converged=converged,
        residual_history=residual_history,
        involutority_history=involutority_history,
        flops=flops,
    )
