"""Chebyshev polynomial-expansion sign kernel (diagonalization-free).

A third accuracy/cost point next to Newton–Schulz (Eq. 11) and Padé
(Eq. 19): approximate ``sign(A)`` by a Chebyshev expansion of the smoothed
sign function

    f(x) = erf(x / λ)     on  [−1, 1],

evaluated with the three-term recurrence ``T_{j+1} = 2 X T_j − T_{j−1}``.
The iteration is GEMM-only (one stacked matrix product per term — no
inversions, no eigendecompositions), which is exactly the operation mix
linear-scaling codes favor on accelerators and the reason polynomial
expansions are the classic alternative to sign iterations in this
literature.

Contract with the bucketed/sharded engines (mirrors
:func:`~repro.signfn.newton_schulz.sign_newton_schulz_batched`):

* every matrix is prescaled **individually** by the
  ``sqrt(‖A‖₁·‖A‖_∞)`` spectral-radius bound, mapping its spectrum into
  ``[−1, 1]`` where the expansion lives;
* convergence — the involutority residual ``‖S² − I‖_F / √n`` — is
  measured per matrix in float64 every ``check_interval`` terms, and a
  converged matrix freezes (stops accumulating terms);
* hence the per-matrix term sequences are independent of the stack
  composition, and the rank-sharded evaluation through ``run_stacks`` is
  bitwise identical to the single-process batched path.

Unlike the quadratically converging Newton–Schulz map, the expansion's
accuracy is limited by the smoothing width λ relative to the (scaled)
spectral gap at the shift: eigenvalues at distance ``g`` from 0 incur an
occupation error ``≈ erfc(g/λ)/2``.  The defaults below resolve the water
benchmark systems' HOMO–LUMO gap to ~1e-9; systems with tighter gaps
need a smaller ``smoothing`` and correspondingly more terms.  Allocation
and GEMMs route through the :class:`~repro.backend.base.ArrayBackend`
``xp`` seam, so the kernel participates in the reduced-precision modes of
:class:`~repro.api.config.PrecisionPolicy` (the FP64 refinement pass
polishes the smoothing floor away).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np
from scipy.special import erf

__all__ = [
    "BatchedChebyshevResult",
    "ChebyshevSignResult",
    "DEFAULT_CHEBYSHEV_DEGREE",
    "DEFAULT_CHEBYSHEV_SMOOTHING",
    "chebyshev_sign_coefficients",
    "sign_chebyshev",
    "sign_chebyshev_batched",
]

#: Default polynomial degree (= GEMMs per matrix).  Sized so the
#: coefficient tail at the default smoothing is far below the convergence
#: threshold; the resilience ladder escalates it on non-convergence.
DEFAULT_CHEBYSHEV_DEGREE = 600

#: Default smoothing width λ of erf(x/λ), relative to the scaled spectrum
#: [−1, 1].  Occupations are exact to ~erfc(g/λ)/2 for a scaled gap g.
DEFAULT_CHEBYSHEV_SMOOTHING = 0.02

#: Involutority residual ``‖S² − I‖_F / √n`` below which a matrix freezes.
DEFAULT_CHEBYSHEV_THRESHOLD = 1e-8

#: Terms between convergence checks (each check costs one stacked GEMM).
DEFAULT_CHECK_INTERVAL = 25

_COEFFICIENT_CACHE: Dict[Tuple[int, float], np.ndarray] = {}


def chebyshev_sign_coefficients(
    degree: int, smoothing: float = DEFAULT_CHEBYSHEV_SMOOTHING
) -> np.ndarray:
    """Chebyshev coefficients of erf(x/λ) on [−1, 1] up to ``degree``.

    Computed by Chebyshev–Gauss quadrature at the ``degree + 1`` Chebyshev
    nodes — deterministic, cached per ``(degree, smoothing)``.  The
    integrand is odd, so even coefficients vanish to rounding.
    """
    degree = int(degree)
    if degree < 1:
        raise ValueError("chebyshev degree must be at least 1")
    smoothing = float(smoothing)
    if smoothing <= 0.0:
        raise ValueError("chebyshev smoothing must be positive")
    key = (degree, smoothing)
    cached = _COEFFICIENT_CACHE.get(key)
    if cached is not None:
        return cached
    n_nodes = degree + 1
    theta = (np.arange(n_nodes) + 0.5) * np.pi / n_nodes
    values = erf(np.cos(theta) / smoothing)
    orders = np.arange(n_nodes)
    coefficients = (2.0 / n_nodes) * (np.cos(np.outer(orders, theta)) @ values)
    coefficients[0] *= 0.5
    # the expansion of an odd function: zero the even orders exactly so the
    # evaluation result cannot pick up quadrature rounding in them
    coefficients[0::2] = 0.0
    _COEFFICIENT_CACHE[key] = coefficients
    return coefficients


def coefficient_tail_bound(
    degree: int, smoothing: float = DEFAULT_CHEBYSHEV_SMOOTHING
) -> float:
    """Σ |c_j| of the truncated tail beyond ``degree`` (a-priori accuracy).

    Estimated from a higher-degree expansion; useful for picking a degree
    for a target accuracy before running anything.
    """
    probe = chebyshev_sign_coefficients(2 * int(degree), smoothing)
    return float(np.abs(probe[int(degree) + 1 :]).sum())


@dataclasses.dataclass
class ChebyshevSignResult:
    """Result of a single-matrix Chebyshev sign evaluation."""

    sign: np.ndarray
    terms: int
    converged: bool
    residual: float


@dataclasses.dataclass
class BatchedChebyshevResult:
    """Result of a batched Chebyshev sign evaluation.

    Attributes
    ----------
    sign:
        ``(k, n, n)`` stack of smoothed-sign estimates.
    terms:
        Per-matrix number of accumulated series terms, shape ``(k,)``.
    converged:
        Per-matrix involutority-convergence flags, shape ``(k,)``.
    """

    sign: np.ndarray
    terms: np.ndarray
    converged: np.ndarray


def sign_chebyshev_batched(
    stack: np.ndarray,
    degree: int = DEFAULT_CHEBYSHEV_DEGREE,
    smoothing: float = DEFAULT_CHEBYSHEV_SMOOTHING,
    convergence_threshold: float = DEFAULT_CHEBYSHEV_THRESHOLD,
    check_interval: int = DEFAULT_CHECK_INTERVAL,
    xp=None,
) -> BatchedChebyshevResult:
    """Evaluate sign(A) on a ``(k, n, n)`` stack by Chebyshev expansion.

    Forward three-term recurrence with one stacked GEMM per term; the
    partial sums accumulate in place.  Every ``check_interval`` terms the
    involutority residual of each still-active matrix is measured in
    float64 and converged matrices freeze — the same per-matrix freeze
    discipline as the batched Newton–Schulz iteration, so the results are
    independent of the stack composition.
    """
    if xp is None:
        from repro.backend.base import NUMPY_BACKEND

        xp = NUMPY_BACKEND
    x = xp.array(stack)
    if x.ndim != 3 or x.shape[-1] != x.shape[-2]:
        raise ValueError("expected a (k, n, n) stack of square matrices")
    count, n, _ = x.shape
    coefficients = chebyshev_sign_coefficients(degree, smoothing)
    abs_x = np.abs(x)
    one_norm = abs_x.sum(axis=1).max(axis=1)
    inf_norm = abs_x.sum(axis=2).max(axis=1)
    scale = np.sqrt(one_norm * inf_norm)
    scale[scale == 0.0] = 1.0
    x /= scale[:, None, None]
    # erf(x/λ) is odd, so only odd orders contribute and the recurrence can
    # step by two — T_{m+2} = 2·T_2·T_m − T_{m−2} with T_2 = 2X² − I —
    # at ONE stacked GEMM per accumulated term (half of the naive cost)
    identity = np.eye(n)
    doubler = np.asarray(2.0 * xp.matmul(x, x), dtype=np.float64)
    doubler -= identity  # T_2, per matrix
    doubler = xp.array(doubler)
    sign = np.zeros((count, n, n), dtype=np.float64)
    terms = np.zeros(count, dtype=int)
    converged = np.zeros(count, dtype=bool)

    # compacted working set: global indices of still-active matrices plus
    # their recurrence/partial-sum state; frozen matrices are written back
    # at the check boundary they converge on, so per-matrix results do not
    # depend on the stack composition
    active = np.arange(count)
    t_prev = xp.array(x)  # T_1
    series = coefficients[1] * np.asarray(t_prev, dtype=np.float64)
    order = 1
    t_curr = None  # highest odd Chebyshev iterate (lazily T_3 on first step)

    def residuals_of(sample: np.ndarray) -> np.ndarray:
        residual = sample @ sample
        residual[:, np.arange(n), np.arange(n)] -= 1.0
        return np.linalg.norm(residual, axis=(1, 2)) / np.sqrt(n)

    def flush(done: np.ndarray) -> None:
        nonlocal active, t_prev, t_curr, series
        sign[active] = series
        terms[active] = order
        converged[active[done]] = True
        keep = ~done
        if keep.all():
            return
        active = active[keep]
        t_prev = t_prev[keep]
        if t_curr is not None:
            t_curr = t_curr[keep]
        series = series[keep]

    next_check = min(
        ((order // check_interval) + 1) * check_interval, degree
    )
    while order + 2 <= degree and active.size > 0:
        order += 2
        if t_curr is None:
            # T_3 = 2·T_2·T_1 − T_1
            t_next = 2.0 * xp.matmul(doubler[active], t_prev) - t_prev
        else:
            t_next = 2.0 * xp.matmul(doubler[active], t_curr) - t_prev
            t_prev = t_curr
        t_curr = t_next
        series += coefficients[order] * np.asarray(t_next, dtype=np.float64)
        if order >= next_check:
            flush(residuals_of(series) < convergence_threshold)
            next_check = min(next_check + check_interval, degree)
    if active.size > 0:
        flush(residuals_of(series) < convergence_threshold)
    return BatchedChebyshevResult(sign=sign, terms=terms, converged=converged)


def sign_chebyshev(
    matrix: np.ndarray,
    degree: int = DEFAULT_CHEBYSHEV_DEGREE,
    smoothing: float = DEFAULT_CHEBYSHEV_SMOOTHING,
    convergence_threshold: float = DEFAULT_CHEBYSHEV_THRESHOLD,
    check_interval: int = DEFAULT_CHECK_INTERVAL,
    xp=None,
) -> ChebyshevSignResult:
    """Single-matrix convenience wrapper over :func:`sign_chebyshev_batched`."""
    dense = np.asarray(matrix, dtype=float)
    if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
        raise ValueError("sign function requires a square matrix")
    batched = sign_chebyshev_batched(
        dense[None, :, :],
        degree=degree,
        smoothing=smoothing,
        convergence_threshold=convergence_threshold,
        check_interval=check_interval,
        xp=xp,
    )
    sign = batched.sign[0]
    residual_matrix = sign @ sign - np.eye(dense.shape[0])
    residual = float(np.linalg.norm(residual_matrix)) / np.sqrt(dense.shape[0])
    return ChebyshevSignResult(
        sign=sign,
        terms=int(batched.terms[0]),
        converged=bool(batched.converged[0]),
        residual=residual,
    )
