"""Figure 9 — strong scaling of the submatrix method.

Paper: a 32,928-atom system (NREP = 7, eps = 1e-5) is solved on 80 to 320
cores; going from two to eight nodes retains ~83% parallel efficiency.

Reproduction: the distributed cost model on a pattern-level 864-molecule box,
scaling the simulated rank count from 80 to 320 at fixed system size.  The
efficiency loss comes from the same sources as in the paper: load imbalance
of the consecutive-chunk assignment and the growing share of communication.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import parallel_efficiency
from repro.chem import build_block_pattern, water_box
from repro.core import submatrix_method_cost

from common import bench_scale, report

EPS_FILTER = 1e-5
RANK_COUNTS = [80, 160, 240, 320]


def run_figure9(machine):
    nrep = 3 if bench_scale() >= 1.0 else 2
    system = water_box(nrep)
    pattern, blocks = build_block_pattern(system, eps_filter=EPS_FILTER)
    rows = []
    times = []
    for ranks in RANK_COUNTS:
        cost = submatrix_method_cost(pattern, blocks.block_sizes, ranks, machine)
        times.append(cost.simulated.total)
        rows.append(
            [
                ranks,
                cost.simulated.total,
                cost.details["flop_imbalance"],
            ]
        )
    efficiency = parallel_efficiency(times, RANK_COUNTS, mode="strong")
    for row, eff in zip(rows, efficiency):
        row.append(float(eff))
    return rows, system


@pytest.mark.benchmark(group="fig09")
def test_fig09_strong_scaling(benchmark, machine):
    rows, system = benchmark.pedantic(
        lambda: run_figure9(machine), rounds=1, iterations=1
    )
    report(
        "fig09_strong_scaling",
        ["cores", "simulated time (s)", "flop imbalance", "efficiency"],
        rows,
        f"Figure 9: strong scaling of the submatrix method "
        f"({system.n_atoms} atoms, eps={EPS_FILTER:g})",
    )
    times = np.array([row[1] for row in rows])
    efficiency = np.array([row[3] for row in rows])
    # more cores -> shorter time
    assert np.all(np.diff(times) < 0)
    # efficiency degrades but stays reasonable (paper: 83% at 4x the cores)
    assert efficiency[-1] < 1.0
    assert efficiency[-1] > 0.5
