"""Benchmark — cross-step reuse of the trajectory session driver.

Quantifies what ``SubmatrixContext.trajectory`` exists for: along an MD/SCF
trajectory the sparsity pattern of the filtered orthogonalized Kohn–Sham
matrix is stable while the values change every step, so one session should
pay for planning (extraction plan, sharded pipeline, bucketed stack
layouts, worker pool) exactly once and serve every later step from cache.

Measured against the natural baseline: a **fresh context per step** — the
workload of a driver script that constructs a new solver for every
geometry, replanning each time.  Both paths compute bitwise-identical
densities; only the planning work differs.

Writes ``BENCH_trajectory.json`` at the repository root so future PRs can
track the trajectory, plus the usual table under ``benchmarks/results``.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np
import pytest

from repro.api import EngineConfig, SubmatrixContext
from repro.chem import HamiltonianModel, build_matrices, water_box

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from common import bench_scale, report  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ROOT_JSON = REPO_ROOT / "BENCH_trajectory.json"

EPS_FILTER = 1e-5
N_ELECTRONS_PER_MOLECULE = 8.0
SHARDED_RANKS = 2


def make_steps(pair, n_steps, scale=1e-4):
    """Value-only geometry steps: perturbed K, fixed S (stable pattern)."""
    return [(pair.K * (1.0 + scale * step), pair.S) for step in range(n_steps)]


def run_trajectory_benchmark():
    system = water_box((2, 1, 1))
    pair = build_matrices(system, model=HamiltonianModel())
    n_steps = max(5, int(round(8 * bench_scale())))
    n_electrons = N_ELECTRONS_PER_MOLECULE * system.n_molecules
    steps = make_steps(pair, n_steps)
    config = EngineConfig(engine="batched", eps_filter=EPS_FILTER)

    # -- session driver: one context, one plan, N steps ------------------- #
    context = SubmatrixContext(config)
    start = time.perf_counter()
    traj = context.trajectory(steps, pair.blocks, n_electrons=n_electrons)
    session_total = time.perf_counter() - start
    stats = traj.stats

    # -- baseline: a fresh context (fresh planning) for every step -------- #
    fresh_results = []
    start = time.perf_counter()
    for K, S in steps:
        fresh_results.append(
            SubmatrixContext(config).density(
                K, S, pair.blocks, n_electrons=n_electrons
            )
        )
    fresh_total = time.perf_counter() - start

    max_diff = max(
        float(np.max(np.abs(traj[i].density_ao - fresh_results[i].density_ao)))
        for i in range(n_steps)
    )

    # -- sharded trajectory: pipeline + shard layouts reused per step ----- #
    sharded_context = SubmatrixContext(config)
    start = time.perf_counter()
    sharded = sharded_context.trajectory(
        steps, pair.blocks, n_electrons=n_electrons, ranks=SHARDED_RANKS
    )
    sharded_total = time.perf_counter() - start

    payload = {
        "benchmark": "trajectory",
        "system": {
            "molecules": int(system.n_molecules),
            "n_steps": n_steps,
            "n_electrons": n_electrons,
        },
        "session": {
            "total_s": session_total,
            "per_step_s": session_total / n_steps,
            "plans_built": stats.plans_built,
            "plan_cache_hits": stats.plan_cache_hits,
            "pattern_changes": stats.pattern_changes,
            "first_step_s": stats.steps[0].wall_time,
            "warm_step_median_s": float(
                np.median([r.wall_time for r in stats.steps[1:]])
            ),
        },
        "fresh_context_per_step": {
            "total_s": fresh_total,
            "per_step_s": fresh_total / n_steps,
        },
        "cross_step_reuse_speedup": fresh_total / session_total
        if session_total > 0
        else float("inf"),
        "bitwise_identical": max_diff == 0.0,
        "sharded": {
            "ranks": SHARDED_RANKS,
            "total_s": sharded_total,
            "per_step_s": sharded_total / n_steps,
            "plans_built": sharded.stats.plans_built,
            "pipelines_built": sharded.stats.pipelines_built,
            "segment_fetch_bytes_per_step": sharded.stats.steps[0].segment_fetch_bytes,
        },
    }
    rows = [
        [
            "session trajectory (1 plan, N steps)",
            session_total / n_steps,
            stats.plans_built,
            fresh_total / session_total if session_total else 0.0,
        ],
        ["fresh context per step (replan each)", fresh_total / n_steps, n_steps, 1.0],
        [
            f"sharded trajectory ({SHARDED_RANKS} ranks, 1 pipeline)",
            sharded_total / n_steps,
            sharded.stats.plans_built,
            fresh_total / sharded_total if sharded_total else 0.0,
        ],
    ]
    with open(ROOT_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return rows, payload


def _report(rows, payload):
    system = payload["system"]
    report(
        "trajectory_reuse",
        ["path", "seconds / step", "plans built", "speedup vs fresh"],
        rows,
        f"Trajectory cross-step reuse ({system['molecules']} molecules, "
        f"{system['n_steps']} value-only steps)",
    )


@pytest.mark.benchmark(group="api")
def test_trajectory(benchmark):
    rows, payload = benchmark.pedantic(run_trajectory_benchmark, rounds=1, iterations=1)
    _report(rows, payload)
    assert payload["bitwise_identical"]
    assert payload["session"]["plans_built"] == 1
    assert payload["session"]["pattern_changes"] == 0
    assert payload["sharded"]["pipelines_built"] == 1


if __name__ == "__main__":
    table_rows, result_payload = run_trajectory_benchmark()
    _report(table_rows, result_payload)
    print(f"wrote {ROOT_JSON}")
