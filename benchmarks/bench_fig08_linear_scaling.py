"""Figure 8 — runtime of the submatrix method vs. system size (linear scaling).

Paper: scaling the water system from 768 atoms (NREP = 2) to 49,152 atoms
(NREP = 8) at fixed resources (80 cores) and eps_filter = 1e-5, the runtime
matches a linear function of the atom count very well.

Reproduction: the distributed cost model at 80 simulated ranks over
pattern-level systems of 256-4000 molecules, plus a measured-wall-clock
series on small systems; both series are fitted to a line and the coefficient
of determination is reported.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import linear_fit
from repro.chem import build_block_pattern, build_matrices, water_box
from repro.core import submatrix_method_cost
from repro.api import EngineConfig
from repro.core.sign_dft import SubmatrixDFTSolver

from common import bench_scale, report

EPS_FILTER = 1e-5
MODEL_RANKS = 80


def run_cost_model(machine):
    replications = [2, 3, 4, 5] if bench_scale() >= 1.0 else [2, 3]
    rows = []
    for nrep in replications:
        system = water_box(nrep)
        pattern, blocks = build_block_pattern(system, eps_filter=EPS_FILTER)
        cost = submatrix_method_cost(
            pattern,
            blocks.block_sizes,
            MODEL_RANKS,
            machine,
            exact_transfers=False,
        )
        rows.append([system.n_atoms, cost.simulated.total])
    return rows


def run_measured(szv_model, mu):
    rows = []
    for factors in [(1, 1, 1), (2, 1, 1), (2, 2, 1)]:
        system = water_box(factors)
        pair = build_matrices(system, model=szv_model)
        start = time.perf_counter()
        SubmatrixDFTSolver(
            eps_filter=EPS_FILTER,
            config=EngineConfig(engine="batched", backend="thread", max_workers=2),
        ).compute_density(pair.K, pair.S, pair.blocks, mu=mu)
        rows.append([system.n_atoms, time.perf_counter() - start])
    return rows


@pytest.mark.benchmark(group="fig08")
def test_fig08_linear_scaling_cost_model(benchmark, machine):
    rows = benchmark.pedantic(lambda: run_cost_model(machine), rounds=1, iterations=1)
    slope, intercept, r_squared = linear_fit(
        [row[0] for row in rows], [row[1] for row in rows]
    )
    report(
        "fig08_linear_scaling_cost_model",
        ["atoms", "simulated time (s)"],
        rows + [["linear fit R^2", r_squared]],
        f"Figure 8 (cost model, {MODEL_RANKS} ranks, eps={EPS_FILTER:g}): "
        "runtime vs. system size",
    )
    # linear scaling: an affine fit describes the data well and time grows
    assert r_squared > 0.9
    assert rows[-1][1] > rows[0][1]
    # sub-quadratic: doubling atoms should far less than quadruple the time
    atoms = np.array([row[0] for row in rows], dtype=float)
    times = np.array([row[1] for row in rows], dtype=float)
    growth = (times[-1] / times[0]) / (atoms[-1] / atoms[0]) ** 2
    assert growth < 1.0


@pytest.mark.benchmark(group="fig08")
def test_fig08_linear_scaling_measured(benchmark, szv_model, gap_mu):
    rows = benchmark.pedantic(
        lambda: run_measured(szv_model, gap_mu), rounds=1, iterations=1
    )
    slope, intercept, r_squared = linear_fit(
        [row[0] for row in rows], [row[1] for row in rows]
    )
    report(
        "fig08_linear_scaling_measured",
        ["atoms", "wall-clock (s)"],
        rows + [["linear fit R^2", r_squared]],
        f"Figure 8 (measured, 2 threads, eps={EPS_FILTER:g}): runtime vs. system size",
    )
    assert rows[-1][1] > rows[0][1]
