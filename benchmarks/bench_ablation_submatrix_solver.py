"""Ablation — per-submatrix solver: eigendecomposition vs. sign iterations.

Paper, Sec. IV-F: "For computing the sign function of our dense submatrices,
we found this [eigendecomposition] approach to be superior to iterative
approaches."  This ablation times the three per-submatrix solvers of the
reproduction (dsyevd-style eigendecomposition, 2nd-order Newton–Schulz,
3rd-order Padé) on a realistic dense submatrix and checks that they agree on
the result.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.chem import orthogonalized_ks
from repro.core.submatrix import extract_block_submatrix
from repro.dbcsr.convert import block_matrix_from_csr
from repro.signfn import (
    sign_newton_schulz,
    sign_pade,
    sign_via_eigendecomposition,
)

from common import report

EPS_FILTER = 1e-5


def run_ablation(pair, mu):
    k_ortho, _ = orthogonalized_ks(pair.K, pair.S, eps_filter=EPS_FILTER)
    blocked = block_matrix_from_csr(k_ortho, pair.blocks.block_sizes)
    submatrix = extract_block_submatrix(blocked, list(range(16))).data
    shifted = submatrix - mu * np.eye(submatrix.shape[0])

    timings = {}
    results = {}

    start = time.perf_counter()
    results["eigendecomposition"] = sign_via_eigendecomposition(shifted)
    timings["eigendecomposition"] = time.perf_counter() - start

    start = time.perf_counter()
    newton = sign_newton_schulz(shifted, convergence_threshold=1e-12)
    timings["newton-schulz (order 2)"] = time.perf_counter() - start
    results["newton-schulz (order 2)"] = newton.sign

    start = time.perf_counter()
    pade = sign_pade(shifted, order=3, convergence_threshold=1e-12)
    timings["pade (order 3)"] = time.perf_counter() - start
    results["pade (order 3)"] = pade.sign

    rows = []
    reference = results["eigendecomposition"]
    for name in ("eigendecomposition", "newton-schulz (order 2)", "pade (order 3)"):
        deviation = float(np.max(np.abs(results[name] - reference)))
        iterations = {
            "eigendecomposition": 1,
            "newton-schulz (order 2)": newton.iterations,
            "pade (order 3)": pade.iterations,
        }[name]
        rows.append([name, submatrix.shape[0], timings[name], iterations, deviation])
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_submatrix_solver(benchmark, water64_pair, gap_mu):
    _, pair = water64_pair
    rows = benchmark.pedantic(
        lambda: run_ablation(pair, gap_mu), rounds=1, iterations=1
    )
    report(
        "ablation_submatrix_solver",
        ["solver", "dimension", "seconds", "iterations", "max deviation"],
        rows,
        "Ablation: per-submatrix sign solvers (Sec. IV-F)",
    )
    # all solvers agree on the sign matrix
    for row in rows:
        assert row[4] < 1e-6
