"""Figure 11 — block-wise and element-wise sparsity of the submatrices.

Paper: for growing water systems (SZV and DZVP, eps = 1e-5) the block-wise
occupation of the orthogonalized Kohn–Sham matrix keeps dropping with system
size (linear scaling), while the block-wise and element-wise occupations of
the *submatrices* become size-independent.  DZVP submatrices are slightly
sparser block-wise and much sparser element-wise (below ~20%), which
motivates element-wise sparse algebra inside the submatrices as future work.

Reproduction: same analysis at the pattern level for 32–2048 molecules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    block_occupation,
    submatrix_block_occupation,
    submatrix_element_occupation,
)
from repro.chem import HamiltonianModel, build_block_pattern, water_box
from repro.chem.basis import DZVP, SZV
from repro.core.submatrix import submatrix_block_rows
from repro.dbcsr import CooBlockList

from common import bench_scale, report

EPS_FILTER = 1e-5


def run_figure11():
    replications = [1, 2, 3, 4] if bench_scale() >= 1.0 else [1, 2]
    rows = []
    for basis in (SZV, DZVP):
        model = HamiltonianModel(basis=basis)
        for nrep in replications:
            system = water_box(nrep)
            pattern, blocks = build_block_pattern(
                system, model=model, eps_filter=EPS_FILTER
            )
            coo = CooBlockList.from_pattern(pattern)
            # probe the submatrix of a molecule in the middle of the box
            probe = system.n_molecules // 2
            retained = submatrix_block_rows(coo, probe)
            rows.append(
                [
                    basis.name.split("-")[0],
                    system.n_molecules,
                    block_occupation(pattern),
                    submatrix_block_occupation(pattern, retained),
                    submatrix_element_occupation(
                        pattern, retained, blocks.block_sizes
                    ),
                ]
            )
    return rows


@pytest.mark.benchmark(group="fig11")
def test_fig11_submatrix_sparsity(benchmark):
    rows = benchmark.pedantic(run_figure11, rounds=1, iterations=1)
    report(
        "fig11_submatrix_sparsity",
        [
            "basis",
            "molecules",
            "K block occupation",
            "SM block occupation",
            "SM element occupation",
        ],
        rows,
        f"Figure 11: sparsity of K vs. submatrices (eps={EPS_FILTER:g})",
    )
    by_basis = {}
    for basis, molecules, k_occ, sm_block, sm_elem in rows:
        by_basis.setdefault(basis, []).append((molecules, k_occ, sm_block, sm_elem))
    for basis, series in by_basis.items():
        series.sort()
        k_occupations = [entry[1] for entry in series]
        sm_block_occupations = [entry[2] for entry in series]
        # the full matrix keeps getting sparser with system size ...
        assert k_occupations[-1] < k_occupations[0]
        # ... while the submatrices stay much denser than the full matrix
        assert sm_block_occupations[-1] > k_occupations[-1]
    if {"SZV", "DZVP"} <= set(by_basis):
        # at the block-pattern level the element-wise occupation of the
        # submatrices is similar for both basis sets (the paper's < 20 %
        # element-wise DZVP sparsity comes from structure *inside* the blocks,
        # which a pattern-level analysis cannot resolve); check they are in
        # the same range and both well below a dense submatrix
        szv_element = by_basis["SZV"][-1][3]
        dzvp_element = by_basis["DZVP"][-1][3]
        assert 0.2 < dzvp_element / szv_element < 5.0
        assert dzvp_element < 1.0
