"""Figure 5 — estimated speedup S vs. number of submatrices for two
column-combination heuristics.

Paper: for a 6912-molecule water system (SZV, eps = 1e-7), combining block
columns into fewer submatrices by (a) k-means clustering of the real-space
coordinates or (b) METIS partitioning of the sparsity graph yields similar
estimated speedups S (Eq. 15) of up to ~1.5-1.6, with S dropping below 1 when
too many unrelated columns are merged (very small numbers of submatrices) or
when the number of submatrices approaches the number of block columns.

Reproduction: the same analysis on an 864-molecule box (NREP = 3) with the
from-scratch k-means and the greedy graph partitioner.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chem import build_block_pattern, water_box
from repro.core import (
    estimated_speedup,
    group_columns_graph,
    group_columns_kmeans,
    single_column_groups,
)
from repro.dbcsr import CooBlockList

from common import bench_scale, report

EPS_FILTER = 1e-7


def run_figure5():
    nrep = 3 if bench_scale() >= 1.0 else 2
    system = water_box(nrep)
    pattern, blocks = build_block_pattern(system, eps_filter=EPS_FILTER)
    coo = CooBlockList.from_pattern(pattern)
    sizes = blocks.block_sizes
    centers = system.molecule_centers()
    n_molecules = system.n_molecules

    single = single_column_groups(n_molecules)
    single_dims = single.submatrix_dimensions(coo, sizes)

    cluster_counts = [
        max(2, n_molecules // 32),
        n_molecules // 16,
        n_molecules // 8,
        n_molecules // 4,
        n_molecules // 2,
    ]
    rows = []
    for n_clusters in cluster_counts:
        kmeans_grouping = group_columns_kmeans(centers, n_clusters, seed=0)
        graph_grouping = group_columns_graph(pattern, n_clusters)
        speedup_kmeans = estimated_speedup(
            coo, sizes, kmeans_grouping, single_dimensions=single_dims
        )
        speedup_graph = estimated_speedup(
            coo, sizes, graph_grouping, single_dimensions=single_dims
        )
        rows.append(
            [
                n_clusters,
                kmeans_grouping.n_submatrices,
                speedup_kmeans,
                graph_grouping.n_submatrices,
                speedup_graph,
            ]
        )
    return rows


@pytest.mark.benchmark(group="fig05")
def test_fig05_clustering_speedup(benchmark):
    rows = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    report(
        "fig05_clustering_speedup",
        [
            "requested clusters",
            "N_S (k-means)",
            "S (k-means)",
            "N_S (graph)",
            "S (graph)",
        ],
        rows,
        "Figure 5: estimated additional speedup S (Eq. 15) for k-means "
        f"(real space) and graph partitioning (eps_filter={EPS_FILTER:g})",
    )
    kmeans_speedups = np.array([row[2] for row in rows])
    graph_speedups = np.array([row[4] for row in rows])
    # shape check 1: some grouping achieves a speedup above 1 for both methods
    assert kmeans_speedups.max() > 1.0
    assert graph_speedups.max() > 1.0
    # shape check 2: the two very different heuristics land in the same range
    # (the paper's surprising observation)
    ratio = kmeans_speedups.max() / graph_speedups.max()
    assert 0.5 < ratio < 2.0
