"""Benchmark — mixed-precision execution policy (kernel + end-to-end).

Quantifies the three claims of the array-backend / precision-policy layer:

* **Kernel throughput.**  The batched Newton–Schulz sign kernel runs on the
  water-box submatrix stack through each array backend (NumPy FP64 baseline,
  emulated FP32 and FP16').  Each reduced mode uses its own attainable
  convergence threshold (``8·ε_mode``, the same rule the policy applies).
  The acceptance bar is that the best reduced mode beats FP64 throughput —
  in the NumPy emulation that is FP32, whose BLAS is genuinely faster;
  half-precision storage is emulated by casts and therefore *slower* than
  FP64 here, which is why the modeled device rates (Table I of the paper)
  are reported next to the measured emulation rates.
* **End-to-end density accuracy.**  ``PrecisionPolicy`` modes ``fp64`` /
  ``fp32`` / ``fp16`` / ``auto`` drive the full density pipeline on the
  water box.  ``fp64`` is asserted bitwise identical to the default path;
  the reduced modes report stacks reduced, FP64 refinement passes, the
  a-priori error bound and the measured density error against FP64.
* **Auto stays within budget.**  With ``error_tolerance=1e-3`` the auto
  policy engages a reduced mode, and both its reported bound and its
  measured density error stay within the configured tolerance.

Writes ``BENCH_mixed_precision.json`` at the repository root so future PRs
can track the trajectory, plus the usual table under ``benchmarks/results``.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np
import pytest

from repro.accel import PRECISION_MODES, RTX_2080_TI, model_sign_algorithm_performance
from repro.api import EngineConfig, PrecisionPolicy, SubmatrixContext
from repro.backend import get_backend
from repro.backend.mixed import REDUCED_CONVERGENCE_FACTOR
from repro.chem import (
    SZV,
    HamiltonianModel,
    build_matrices,
    orthogonalized_ks,
    water_box,
)
from repro.signfn.newton_schulz import sign_newton_schulz_batched

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from common import bench_scale, report  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ROOT_JSON = REPO_ROOT / "BENCH_mixed_precision.json"

N_ELECTRONS_PER_MOLECULE = 8.0
AUTO_TOLERANCE = 1e-3
KERNEL_STACK_DEPTH = 8
KERNEL_MODES = ("FP64", "FP32", "FP16'")


def _water_pair():
    model = HamiltonianModel(basis=SZV)
    system = water_box(1)
    pair = build_matrices(system, model=model)
    return system, pair, model.homo_lumo_gap_center()


def _kernel_stack(pair, mu):
    """A (k, n, n) submatrix-style stack from the water Hamiltonian."""
    ortho, _ = orthogonalized_ks(pair.K, pair.S)
    dense = ortho.toarray()
    n = dense.shape[0]
    rng = np.random.default_rng(0)
    stack = np.stack(
        [dense - mu * np.eye(n) for _ in range(KERNEL_STACK_DEPTH)]
    )
    stack += 1e-6 * rng.standard_normal(stack.shape)
    return 0.5 * (stack + np.swapaxes(stack, -1, -2))


def _kernel_throughput(stack, repetitions):
    k, n = stack.shape[0], stack.shape[-1]
    measurements = {}
    for name in KERNEL_MODES:
        if name == "FP64":
            xp, threshold = None, 1e-10
        else:
            xp = get_backend("emulated", precision=name)
            threshold = REDUCED_CONVERGENCE_FACTOR * PRECISION_MODES[name].epsilon
        sign_newton_schulz_batched(stack, convergence_threshold=threshold, xp=xp)
        best = float("inf")
        result = None
        for _ in range(repetitions):
            start = time.perf_counter()
            result = sign_newton_schulz_batched(
                stack, convergence_threshold=threshold, xp=xp
            )
            best = min(best, time.perf_counter() - start)
        iterations = int(np.max(np.asarray(result.iterations)))
        # two n^3 products per Newton-Schulz iteration per slot
        flops = 2.0 * 2.0 * k * float(n) ** 3 * iterations
        modeled = model_sign_algorithm_performance(RTX_2080_TI, name)
        measurements[name] = {
            "convergence_threshold": threshold,
            "iterations": iterations,
            "converged": bool(np.all(result.converged)),
            "best_s": best,
            "emulated_gflops": flops / best / 1e9,
            "modeled_device_overall_tflops": float(modeled.overall_tflops),
            "modeled_device_gemm_tflops": float(modeled.gemm_tflops),
        }
    for name, measurement in measurements.items():
        measurement["speedup_vs_fp64"] = (
            measurements["FP64"]["best_s"] / measurement["best_s"]
        )
    return {
        "stack_shape": list(stack.shape),
        "per_mode": measurements,
        "best_reduced_mode": max(
            (m for m in KERNEL_MODES if m != "FP64"),
            key=lambda m: measurements[m]["emulated_gflops"],
        ),
    }


def _density(pair, mu, n_electrons, policy):
    config = EngineConfig(engine="batched", precision=policy)
    with SubmatrixContext(config) as context:
        start = time.perf_counter()
        result = context.density(
            pair.K, pair.S, pair.blocks, mu=mu, solver="newton_schulz"
        )
        elapsed = time.perf_counter() - start
    return result, elapsed


def _end_to_end(pair, mu, n_electrons):
    policies = {
        "fp64": PrecisionPolicy(mode="fp64"),
        "fp32": PrecisionPolicy(mode="fp32"),
        "fp16": PrecisionPolicy(mode="fp16"),
        "auto": PrecisionPolicy(mode="auto", error_tolerance=AUTO_TOLERANCE),
    }
    baseline, _ = _density(pair, mu, n_electrons, PrecisionPolicy.disabled())
    measurements = {}
    for name, policy in policies.items():
        result, elapsed = _density(pair, mu, n_electrons, policy)
        error = float(np.abs(result.density_ao - baseline.density_ao).max())
        measurements[name] = {
            "mode": policy.mode,
            "wall_s": elapsed,
            "stacks_reduced": int(result.stacks_reduced),
            "refinement_passes": int(result.refinement_passes),
            "precision_error_bound": result.precision_error_bound,
            "density_max_error": error,
            "bitwise_identical_to_fp64": bool(
                np.array_equal(result.density_ao, baseline.density_ao)
            ),
        }
    measurements["auto"]["error_tolerance"] = AUTO_TOLERANCE
    return measurements


def run_mixed_precision_benchmark():
    scale = bench_scale()
    system, pair, mu = _water_pair()
    n_electrons = N_ELECTRONS_PER_MOLECULE * system.n_molecules

    kernel = _kernel_throughput(
        _kernel_stack(pair, mu), repetitions=max(3, int(round(5 * scale)))
    )
    density = _end_to_end(pair, mu, n_electrons)

    payload = {
        "benchmark": "mixed_precision",
        "system": {
            "molecules": int(system.n_molecules),
            "n_basis": int(pair.K.shape[0]),
            "mu": float(mu),
        },
        "kernel_throughput": kernel,
        "end_to_end": density,
    }
    rows = []
    for name in KERNEL_MODES:
        measurement = kernel["per_mode"][name]
        rows.append(
            [
                f"kernel {name}",
                measurement["best_s"],
                f"{measurement['emulated_gflops']:.1f} GFLOP/s emulated, "
                f"{measurement['modeled_device_overall_tflops']:.1f} TFLOP/s modeled",
                f"{measurement['speedup_vs_fp64']:.2f}x",
            ]
        )
    for name, measurement in density.items():
        note = (
            "bitwise = fp64"
            if measurement["bitwise_identical_to_fp64"]
            else f"err {measurement['density_max_error']:.2e}, "
            f"{measurement['stacks_reduced']} stacks reduced"
        )
        rows.append([f"density {name}", measurement["wall_s"], note, "-"])
    with open(ROOT_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return rows, payload


def _report(rows, payload):
    system = payload["system"]
    report(
        "mixed_precision",
        ["path", "seconds", "throughput / accuracy", "speedup"],
        rows,
        f"Mixed-precision execution ({system['molecules']} molecules / "
        f"{system['n_basis']} basis functions, mu = {system['mu']:.2f})",
    )


def _assert_acceptance(payload):
    kernel = payload["kernel_throughput"]
    best = kernel["per_mode"][kernel["best_reduced_mode"]]
    fp64 = kernel["per_mode"]["FP64"]
    assert best["converged"] and fp64["converged"]
    # the best reduced mode beats fp64 throughput on the water stack
    assert best["emulated_gflops"] > fp64["emulated_gflops"], kernel
    density = payload["end_to_end"]
    assert density["fp64"]["bitwise_identical_to_fp64"]
    assert density["fp32"]["stacks_reduced"] > 0
    assert density["fp32"]["density_max_error"] < 1e-5
    # auto engages a reduced mode and its refined error stays within budget
    auto = density["auto"]
    assert auto["stacks_reduced"] > 0, auto
    assert auto["precision_error_bound"] <= AUTO_TOLERANCE, auto
    assert auto["density_max_error"] <= AUTO_TOLERANCE, auto


@pytest.mark.benchmark(group="core")
def test_mixed_precision(benchmark):
    rows, payload = benchmark.pedantic(
        run_mixed_precision_benchmark, rounds=1, iterations=1
    )
    _report(rows, payload)
    _assert_acceptance(payload)


if __name__ == "__main__":
    table_rows, result_payload = run_mixed_precision_benchmark()
    _report(table_rows, result_payload)
    _assert_acceptance(result_payload)
    best_mode = result_payload["kernel_throughput"]["best_reduced_mode"]
    print(f"best reduced kernel mode: {best_mode}")
    print(f"wrote {ROOT_JSON}")
