"""Benchmark — multi-tenant density service under a synthetic client load.

A load generator drives :class:`repro.serve.DensityService` with N client
threads (one tenant each) submitting density requests over a shared library
of M molecular patterns, and measures:

* **cross-tenant plan-cache reuse** — every pattern's extraction plan is
  built once for the whole service; tenants sharing patterns must see a
  cache hit rate above 50 % (asserted: with ``R`` total requests over
  ``M`` patterns the expected rate is ``1 − M/R``);
* **micro-batching throughput** — the same request set served one at a
  time (batching disabled, single client) vs concurrently with the
  cross-request micro-batcher coalescing compatible requests into merged
  eigh stacks and deduplicating the μ-independent work of requests that
  carry bytewise-identical inputs (the shared molecule library makes such
  overlap the common case, as it is for real multi-tenant loads);
* **tail latency** — p50/p99 submit-to-completion latency per tenant from
  the service's own metrics;
* **bitwise identity** — every served result is compared against a direct
  ``SubmatrixContext.density`` reference for its (pattern, ensemble) pair
  (asserted).

Writes ``BENCH_service_throughput.json`` at the repository root so future
PRs can track the trajectory, plus the usual table under
``benchmarks/results``.
"""

from __future__ import annotations

import json
import pathlib
import sys
import threading
import time

import numpy as np
import pytest

from repro.api import EngineConfig, SubmatrixContext
from repro.chem import HamiltonianModel, build_matrices, water_box
from repro.serve import AdmissionPolicy, DensityService

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from common import bench_scale, report  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ROOT_JSON = REPO_ROOT / "BENCH_service_throughput.json"

N_ELECTRONS_PER_MOLECULE = 8.0
CONFIG = EngineConfig(engine="batched", backend="thread")
HIT_RATE_ACCEPTANCE = 0.5


def _workload(scale: float):
    """Client/pattern/request counts scaled by ``REPRO_BENCH_SCALE``."""
    n_clients = max(2, int(round(4 * scale)))
    n_patterns = max(2, int(round(3 * scale)))
    requests_per_client = max(2, int(round(6 * scale)))
    return n_clients, n_patterns, requests_per_client


def _pattern_library(n_patterns: int):
    """M distinct 32-molecule water systems (distinct jittered geometries)."""
    model = HamiltonianModel()
    mu = model.homo_lumo_gap_center()
    pairs = [
        build_matrices(water_box(1, seed=2020 + index), model=model)
        for index in range(n_patterns)
    ]
    return pairs, mu


def _request_args(pairs, mu, client: int, index: int):
    """Deterministic request mix: patterns round-robin, ensembles alternate."""
    pattern = (client + index) % len(pairs)
    pair = pairs[pattern]
    if index % 2 == 0:
        ensemble = {"mu": mu}
    else:
        ensemble = {"n_electrons": N_ELECTRONS_PER_MOLECULE * 32}
    return pattern, pair, ensemble


def _references(pairs, mu):
    """Direct single-context reference result per (pattern, ensemble)."""
    references = {}
    with SubmatrixContext(CONFIG) as context:
        for pattern, pair in enumerate(pairs):
            references[(pattern, "mu")] = context.density(
                pair.K, pair.S, pair.blocks, mu=mu
            )
            references[(pattern, "n_electrons")] = context.density(
                pair.K, pair.S, pair.blocks,
                n_electrons=N_ELECTRONS_PER_MOLECULE * 32,
            )
    return references


def _identical(result, reference) -> bool:
    return bool(
        np.array_equal(result.density_ao, reference.density_ao)
        and np.array_equal(
            result.density_ortho.toarray(), reference.density_ortho.toarray()
        )
        and result.mu == reference.mu
        and result.band_energy == reference.band_energy
    )


def _policy():
    return AdmissionPolicy(max_in_flight=1024, max_in_flight_per_tenant=256)


def _serve_sequential(pairs, mu, n_clients, requests_per_client, references):
    """Serve-one-at-a-time baseline: batching off, one blocking client."""
    bitwise = True
    with DensityService(config=CONFIG, policy=_policy(), batching=False) as service:
        start = time.perf_counter()
        for client in range(n_clients):
            for index in range(requests_per_client):
                pattern, pair, ensemble = _request_args(pairs, mu, client, index)
                result = service.density(
                    pair.K, pair.S, pair.blocks,
                    tenant=f"client-{client}", **ensemble,
                )
                key = (pattern, next(iter(ensemble)))
                bitwise = bitwise and _identical(result, references[key])
        wall = time.perf_counter() - start
        snapshot = service.stats()
    n_requests = n_clients * requests_per_client
    return {
        "wall_s": wall,
        "requests": n_requests,
        "throughput_rps": n_requests / wall if wall > 0 else 0.0,
        "bitwise_identical": bitwise,
        "cache_hit_rate": snapshot["plan_cache_hit_rate"],
    }


def _serve_concurrent(pairs, mu, n_clients, requests_per_client, references):
    """Concurrent clients against the micro-batching service."""
    mismatches = []
    errors = []
    with DensityService(
        config=CONFIG, policy=_policy(), batching=True,
        max_batch=8, batch_wait=0.01,
    ) as service:
        barrier = threading.Barrier(n_clients)

        def client_thread(client: int):
            try:
                barrier.wait()
                futures = []
                for index in range(requests_per_client):
                    pattern, pair, ensemble = _request_args(pairs, mu, client, index)
                    future = service.submit(
                        pair.K, pair.S, pair.blocks,
                        tenant=f"client-{client}", **ensemble,
                    )
                    futures.append((pattern, next(iter(ensemble)), future))
                for pattern, kind, future in futures:
                    result = future.result(600)
                    if not _identical(result, references[(pattern, kind)]):
                        mismatches.append((client, pattern, kind))
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(repr(error))

        threads = [
            threading.Thread(target=client_thread, args=(client,))
            for client in range(n_clients)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
        snapshot = service.stats()
    total = snapshot["metrics"]["total"]
    percentiles = {
        tenant: {
            "p50_ms": 1000.0 * stats["p50_latency"],
            "p99_ms": 1000.0 * stats["p99_latency"],
        }
        for tenant, stats in snapshot["metrics"]["tenants"].items()
    }
    pooled = [s for s in snapshot["metrics"]["tenants"].values()]
    n_requests = n_clients * requests_per_client
    return {
        "wall_s": wall,
        "requests": n_requests,
        "throughput_rps": n_requests / wall if wall > 0 else 0.0,
        "bitwise_identical": not mismatches and not errors,
        "errors": errors,
        "batched_requests": int(total["batched"]),
        "coalesced_requests": int(total["coalesced"]),
        "shared_requests": int(total["shared"]),
        "mean_batch_size": (
            total["coalesced"] / total["batched"] if total["batched"] else 1.0
        ),
        "p50_ms": 1000.0 * float(np.median([s["p50_latency"] for s in pooled])),
        "p99_ms": 1000.0 * float(max(s["p99_latency"] for s in pooled)),
        "per_tenant_latency": percentiles,
        "cache_hit_rate": snapshot["plan_cache_hit_rate"],
        "plan_builds": snapshot["plan_cache"]["builds"],
        "plan_cache_bytes": snapshot["plan_cache_bytes"],
    }


def run_service_benchmark():
    scale = bench_scale()
    n_clients, n_patterns, requests_per_client = _workload(scale)
    pairs, mu = _pattern_library(n_patterns)
    references = _references(pairs, mu)
    n_basis = pairs[0].blocks.n_basis

    sequential = _serve_sequential(
        pairs, mu, n_clients, requests_per_client, references
    )
    concurrent = _serve_concurrent(
        pairs, mu, n_clients, requests_per_client, references
    )
    speedup = (
        concurrent["throughput_rps"] / sequential["throughput_rps"]
        if sequential["throughput_rps"] > 0
        else 0.0
    )
    payload = {
        "scale": scale,
        "workload": {
            "clients": n_clients,
            "patterns": n_patterns,
            "requests_per_client": requests_per_client,
            "total_requests": n_clients * requests_per_client,
            "n_basis": n_basis,
        },
        "sequential": sequential,
        "concurrent_batched": concurrent,
        "throughput_gain": speedup,
        "hit_rate_acceptance": HIT_RATE_ACCEPTANCE,
    }
    rows = [
        [
            "serve-one-at-a-time",
            sequential["requests"],
            sequential["wall_s"],
            sequential["throughput_rps"],
            "-",
            "-",
            sequential["bitwise_identical"],
        ],
        [
            "concurrent + micro-batch",
            concurrent["requests"],
            concurrent["wall_s"],
            concurrent["throughput_rps"],
            concurrent["p50_ms"],
            concurrent["p99_ms"],
            concurrent["bitwise_identical"],
        ],
    ]
    return rows, payload


def _report(rows, payload):
    with open(ROOT_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=float)
    workload = payload["workload"]
    report(
        "service_throughput",
        ["mode", "requests", "wall s", "req/s", "p50 ms", "p99 ms", "bitwise"],
        rows,
        f"Density service throughput ({workload['clients']} clients x "
        f"{workload['requests_per_client']} requests over "
        f"{workload['patterns']} shared patterns, {workload['n_basis']} "
        "basis functions)",
    )


def _assert_deterministic_bars(payload):
    """Bars that hold at any scale (wall-clock gain is reported, not gated)."""
    assert payload["sequential"]["bitwise_identical"]
    assert payload["concurrent_batched"]["bitwise_identical"], payload[
        "concurrent_batched"
    ]["errors"]
    assert payload["concurrent_batched"]["batched_requests"] > 0
    assert (
        payload["concurrent_batched"]["cache_hit_rate"] > HIT_RATE_ACCEPTANCE
    ), payload["concurrent_batched"]["cache_hit_rate"]


@pytest.mark.benchmark(group="serve")
def test_service_throughput(benchmark):
    rows, payload = benchmark.pedantic(
        run_service_benchmark, rounds=1, iterations=1
    )
    _report(rows, payload)
    _assert_deterministic_bars(payload)


if __name__ == "__main__":
    table_rows, result_payload = run_service_benchmark()
    _report(table_rows, result_payload)
    _assert_deterministic_bars(result_payload)
    gain = result_payload["throughput_gain"]
    print(f"micro-batched throughput gain vs serve-one-at-a-time: {gain:.2f}x")
    print(f"wrote {ROOT_JSON}")
