"""Figure 7 — energy error of submatrix method vs. Newton–Schulz as a
function of eps_filter.

Paper: for the 20,736-atom system, the error in the band-structure energy
(vs. an eps = 1e-15 reference) grows with the filter threshold and is of the
same order for both methods — the additional approximation of the submatrix
method does not degrade the accuracy noticeably.

Reproduction: 64-molecule slab, dense reference, errors for both methods over
a sweep of thresholds.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis import energy_error_per_atom
from repro.chem import orthogonalized_ks, reference_density_matrix
from repro.chem.density import band_structure_energy, density_from_sign
from repro.core.sign_dft import SubmatrixDFTSolver
from repro.signfn import sign_newton_schulz_filtered_dense

from common import report

FILTER_THRESHOLDS = [1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8]


def run_figure7(system, pair, mu):
    reference = reference_density_matrix(pair.K, pair.S, mu=mu)
    rows = []
    for eps in FILTER_THRESHOLDS:
        submatrix = SubmatrixDFTSolver(eps_filter=eps).compute_density(
            pair.K, pair.S, pair.blocks, mu=mu
        )
        submatrix_error = energy_error_per_atom(
            submatrix.band_energy, reference.band_energy, system.n_atoms
        )

        k_ortho, s_inv_sqrt = orthogonalized_ks(pair.K, pair.S, eps_filter=eps)
        n = k_ortho.shape[0]
        shifted = (k_ortho - mu * sp.identity(n, format="csr")).tocsr()
        sign = sign_newton_schulz_filtered_dense(shifted, eps_filter=eps).sign
        density = density_from_sign(sign, s_inv_sqrt)
        newton_energy = band_structure_energy(density, pair.K.toarray())
        newton_error = energy_error_per_atom(
            newton_energy, reference.band_energy, system.n_atoms
        )
        rows.append([eps, submatrix_error, newton_error])
    return rows


@pytest.mark.benchmark(group="fig07")
def test_fig07_energy_error_vs_filter(benchmark, water64_pair, gap_mu):
    system, pair = water64_pair
    rows = benchmark.pedantic(
        lambda: run_figure7(system, pair, gap_mu), rounds=1, iterations=1
    )
    report(
        "fig07_energy_error_vs_filter",
        ["eps_filter", "submatrix (meV/atom)", "newton-schulz (meV/atom)"],
        rows,
        f"Figure 7: |energy error| vs. eps_filter ({system.n_atoms} atoms)",
    )
    rows = np.array(rows, dtype=float)
    # errors grow with the threshold for both methods
    assert rows[0, 1] > rows[-1, 1]
    assert rows[0, 2] > rows[-1, 2]
    # the submatrix method's worst-case error over the sweep is comparable to
    # Newton-Schulz's (within ~1.5 orders of magnitude, as in the paper where
    # both methods show errors of the same order)
    assert rows[:, 1].max() < 30.0 * rows[:, 2].max() + 1e-9
