"""Table I — GEMM and end-to-end sign-algorithm throughput on accelerators.

Paper (Table I, RTX 2080 Ti, submatrix dimension 3972):

    precision   peak        matrix-multiplies   sign algorithm
    FP16        108 TFLOP/s 56.4 TFLOP/s        35.2 TFLOP/s
    FP16'        56 TFLOP/s 38.2 TFLOP/s        27.8 TFLOP/s
    FP32         13 TFLOP/s 12.2 TFLOP/s        10.4 TFLOP/s
    FP64        0.5 TFLOP/s  0.5 TFLOP/s         0.5 TFLOP/s

plus, in the text (Sec. VI-B), the Stratix 10 FPGA: 2.7 TFLOP/s for FP32
matrix multiplies and 1.75 TFLOP/s for the sign algorithm end-to-end.

Reproduction: the analytic device model recomputes the "sign algorithm"
column from the published peak/GEMM rates and the non-GEMM overheads (type
conversions, host-device transfer, convergence tests).  The absolute numbers
are the paper's own device characteristics; what is being validated is the
overhead accounting that turns GEMM throughput into end-to-end throughput.
"""

from __future__ import annotations

import pytest

from repro.accel import RTX_2080_TI, STRATIX_10, performance_table

from common import report

PAPER_SIGN_TFLOPS = {"FP16": 35.2, "FP16'": 27.8, "FP32": 10.4, "FP64": 0.5}
PAPER_FPGA_SIGN_TFLOPS = 1.75


def run_table1():
    rows = []
    for entry in performance_table(RTX_2080_TI, matrix_dimension=3972, iterations=8):
        rows.append(
            [
                entry.device,
                entry.precision,
                entry.peak_tflops,
                entry.gemm_tflops,
                entry.overall_tflops,
                PAPER_SIGN_TFLOPS[entry.precision],
                entry.gflops_per_watt_second,
            ]
        )
    for entry in performance_table(STRATIX_10, matrix_dimension=3972, iterations=8):
        rows.append(
            [
                entry.device,
                entry.precision,
                entry.peak_tflops,
                entry.gemm_tflops,
                entry.overall_tflops,
                PAPER_FPGA_SIGN_TFLOPS,
                entry.gflops_per_watt_second,
            ]
        )
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_device_performance(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    report(
        "table1_device_performance",
        [
            "device",
            "precision",
            "peak (TFLOP/s)",
            "GEMM (TFLOP/s)",
            "sign algorithm (TFLOP/s, model)",
            "sign algorithm (TFLOP/s, paper)",
            "GFLOP/(W s)",
        ],
        rows,
        "Table I: device throughput of the third-order sign iteration (n=3972)",
    )
    for row in rows:
        modelled = row[4]
        paper = row[5]
        # the modelled end-to-end throughput lands within a factor of ~1.6 of
        # the paper's measurement for every precision and device
        assert modelled / paper < 1.6
        assert paper / modelled < 1.6
        # and never exceeds the practical GEMM rate
        assert modelled <= row[3] + 1e-9
