"""Micro-benchmark — naive vs. plan vs. bucketed-batched submatrix engine.

Times a full block-level sign evaluation (extraction + eigendecomposition
sign + scatter) on a 256-block-column water system with the three execution
engines of :class:`repro.core.method.SubmatrixMethod`:

* ``naive``   — the seed's reference path (per-call bookkeeping, Python
  block loops, copying scatter);
* ``plan``    — cached extraction plans with single-shot vectorized
  gathers/scatters (bitwise identical results);
* ``batched`` — the plan engine plus bucketed 3-D stack evaluation with one
  batched eigendecomposition per stack.

A second phase sweeps **every registered sign kernel** (whatever
:func:`repro.signfn.registry.available_kernels` reports — eigen,
Newton–Schulz, Padé, Chebyshev, plus anything a plugin registered) through
the grand-canonical density driver on the same system, reporting each
kernel's cost and its density error against the eigendecomposition
reference.  New kernels join the sweep by registration, not by editing
this file.

The system uses a short-decay SZV variant: at reproduction scale this stands
in for the paper's saturated linear-scaling regime (Fig. 4 — submatrix
dimensions stop growing once the interaction radius fits the box), which is
exactly the regime where per-submatrix Python overhead dominates the naive
path and the vectorized engine pays off.  The speedup shrinks toward the
dense-eigensolver bound as submatrices grow (see the ROADMAP notes).

Writes ``BENCH_submatrix_engine.json`` at the repository root (median wall
times, speedup factors, equivalence checks) so future PRs can track the
trajectory, plus the usual table under ``benchmarks/results``.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import sys
import time

import numpy as np
import pytest

from repro.api import EngineConfig, SubmatrixContext
from repro.chem import (
    HamiltonianModel,
    build_matrices,
    orthogonalized_ks,
    water_box,
)
from repro.chem.basis import SZV
from repro.core import PlanCache, SubmatrixMethod
from repro.dbcsr import CooBlockList
from repro.dbcsr.convert import block_matrix_from_csr, block_matrix_to_dense
from repro.signfn import (
    sign_via_eigendecomposition,
    sign_via_eigendecomposition_batched,
)
from repro.signfn.registry import available_kernels

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from common import bench_scale, report  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ROOT_JSON = REPO_ROOT / "BENCH_submatrix_engine.json"

EPS_FILTER = 1e-4
NREP = (8, 1, 1)  # 256 molecules = 256 block columns

#: SZV with a shortened decay length: the reproduction-scale stand-in for
#: the saturated linear-scaling regime (small submatrices, many of them).
SHORT_SZV = dataclasses.replace(
    SZV,
    name="SZV-short-decay",
    decay_length=0.20,
    overlap_decay_length=0.16,
)


def build_system():
    """Orthogonalized Kohn–Sham matrix of the benchmark system, blocked."""
    model = HamiltonianModel(basis=SHORT_SZV)
    system = water_box(NREP)
    pair = build_matrices(system, model=model)
    k_ortho, _ = orthogonalized_ks(pair.K, pair.S, eps_filter=EPS_FILTER)
    blocked = block_matrix_from_csr(
        k_ortho, pair.blocks.block_sizes, threshold=0.0
    )
    coo = CooBlockList.from_block_matrix(blocked)
    mu = model.homo_lumo_gap_center()
    return system, pair, blocked, coo, mu


def run_kernel_sweep(pair, mu, repeats):
    """Every registered sign kernel through the density driver at fixed μ.

    Grand-canonical on purpose: the iterative kernels do not support the
    canonical μ-bisection (Algorithm 1 needs the cached
    eigendecompositions), so a fixed μ is the one ensemble every kernel
    can run.  Accuracy is measured against the eigen kernel's density.
    """
    sweep = {}
    with SubmatrixContext(
        EngineConfig(engine="batched", backend="thread", eps_filter=EPS_FILTER)
    ) as context:
        reference = None
        for kernel in available_kernels():
            run = lambda: context.density(  # noqa: E731
                pair.K, pair.S, pair.blocks, mu=mu, solver=kernel
            )
            result = run()  # warm-up (plans, pipelines)
            samples = []
            for _ in range(repeats):
                start = time.perf_counter()
                result = run()
                samples.append(time.perf_counter() - start)
            if kernel == "eigen":
                reference = result
            sweep[kernel] = {
                "median_wall_time_s": float(np.median(samples)),
                "result": result,
            }
    for kernel, entry in sweep.items():
        result = entry.pop("result")
        entry["max_abs_diff_vs_eigen"] = float(
            np.max(np.abs(result.density_ao - reference.density_ao))
        )
        entry["cost_vs_eigen"] = (
            entry["median_wall_time_s"] / sweep["eigen"]["median_wall_time_s"]
        )
    return sweep


def run_engine_benchmark():
    system, pair, blocked, coo, mu = build_system()
    repeats = max(3, int(round(5 * bench_scale())))
    cache = PlanCache()
    method = SubmatrixMethod(
        lambda a: sign_via_eigendecomposition(a, mu),
        batch_function=lambda stack: sign_via_eigendecomposition_batched(stack, mu),
        plan_cache=cache,
    )

    # cold plan construction cost (first planned call builds + caches)
    start = time.perf_counter()
    method.apply_blockwise(blocked, coo=coo, engine="plan")
    cold_seconds = time.perf_counter() - start

    timings = {}
    results = {}
    for engine in ("naive", "plan", "batched"):
        method.apply_blockwise(blocked, coo=coo, engine=engine)  # warm-up
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            outcome = method.apply_blockwise(blocked, coo=coo, engine=engine)
            samples.append(time.perf_counter() - start)
        timings[engine] = float(np.median(samples))
        results[engine] = outcome

    dense_naive = block_matrix_to_dense(results["naive"].result)
    plan_diff = float(
        np.max(np.abs(dense_naive - block_matrix_to_dense(results["plan"].result)))
    )
    batched_diff = float(
        np.max(np.abs(dense_naive - block_matrix_to_dense(results["batched"].result)))
    )
    dimensions = results["naive"].submatrix_dimensions
    kernel_repeats = max(1, repeats // 3)
    kernels = run_kernel_sweep(pair, mu, kernel_repeats)
    payload = {
        "benchmark": "submatrix_engine",
        "system": {
            "molecules": int(system.n_molecules),
            "n_block_cols": int(blocked.n_block_cols),
            "nnz_blocks": int(blocked.nnz_blocks),
            "basis": SHORT_SZV.name,
            "decay_length": SHORT_SZV.decay_length,
            "eps_filter": EPS_FILTER,
            "max_submatrix_dimension": int(max(dimensions)),
            "mean_submatrix_dimension": float(np.mean(dimensions)),
        },
        "repeats": repeats,
        "median_wall_time_s": {
            engine: timings[engine] for engine in ("naive", "plan", "batched")
        },
        "speedup_vs_naive": {
            "plan": timings["naive"] / timings["plan"],
            "plan_batched": timings["naive"] / timings["batched"],
        },
        "plan_cache": {
            "cold_first_call_s": cold_seconds,
            "warm_call_s": timings["plan"],
            "stats": cache.stats,
        },
        "equivalence": {
            "plan_max_abs_diff": plan_diff,
            "plan_bitwise_identical": plan_diff == 0.0,
            "batched_max_abs_diff": batched_diff,
        },
        "kernel_repeats": kernel_repeats,
        "kernels": kernels,
    }
    with open(ROOT_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    rows = [
        [
            engine,
            int(max(dimensions)),
            timings[engine],
            timings["naive"] / timings[engine],
            {"naive": 0.0, "plan": plan_diff, "batched": batched_diff}[engine],
        ]
        for engine in ("naive", "plan", "batched")
    ]
    return rows, payload


def kernel_rows(payload):
    return [
        [
            kernel,
            entry["median_wall_time_s"],
            entry["cost_vs_eigen"],
            entry["max_abs_diff_vs_eigen"],
        ]
        for kernel, entry in payload["kernels"].items()
    ]


def report_all(payload, rows):
    report(
        "submatrix_engine",
        ["engine", "max dim(SM)", "median seconds", "speedup", "max |diff| vs naive"],
        rows,
        "Submatrix engine: naive vs. plan vs. bucketed-batched "
        f"({payload['system']['molecules']} molecules, eps_filter={EPS_FILTER:g})",
    )
    report(
        "submatrix_kernels",
        ["kernel", "median seconds", "cost vs eigen", "max |diff| vs eigen"],
        kernel_rows(payload),
        "Registered sign kernels through the grand-canonical density driver",
    )


@pytest.mark.benchmark(group="engine")
def test_submatrix_engine(benchmark):
    rows, payload = benchmark.pedantic(
        run_engine_benchmark, rounds=1, iterations=1
    )
    report_all(payload, rows)
    # the plan engine must be an exact drop-in for the naive reference
    assert payload["equivalence"]["plan_bitwise_identical"]
    assert payload["equivalence"]["batched_max_abs_diff"] < 1e-10
    # both vectorized paths must actually be faster (the ≥5x target for the
    # batched path is recorded in the JSON, not asserted, to keep the suite
    # robust on loaded machines)
    assert payload["speedup_vs_naive"]["plan"] > 1.0
    assert payload["speedup_vs_naive"]["plan_batched"] > 1.0
    # every registered kernel must have been swept and produced a density
    # close to the eigen reference
    assert set(payload["kernels"]) == set(available_kernels())
    for entry in payload["kernels"].values():
        assert entry["max_abs_diff_vs_eigen"] < 1e-5


if __name__ == "__main__":
    table_rows, result_payload = run_engine_benchmark()
    report_all(result_payload, table_rows)
    print(f"wrote {ROOT_JSON}")
