"""Benchmark — session reuse and rank-sharded μ-bisection through the API.

Quantifies what the unified session API exists for:

* **session reuse** — repeated ``SubmatrixContext.apply`` calls on an
  unchanged sparsity pattern amortize one plan build (and one worker pool)
  across the whole session; compared against paying the full plan build in
  a fresh context on every call (μ-bisection / MD-style workloads);
* **sharded μ-bisection** — the canonical-ensemble density calculation with
  the eigendecomposition cache built rank-sharded through the
  :class:`~repro.core.runner.DistributedSubmatrixPipeline` for ranks
  {1, 2, 4}, checked bitwise against the single-process solver.

Writes ``BENCH_api_context.json`` at the repository root so future PRs can
track the trajectory, plus the usual table under ``benchmarks/results``.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np
import pytest

from repro.api import EngineConfig, SubmatrixContext
from repro.chem import HamiltonianModel, build_matrices, water_box
from repro.dbcsr.convert import block_matrix_to_dense

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from bench_submatrix_engine import build_system  # noqa: E402
from common import bench_scale, report  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ROOT_JSON = REPO_ROOT / "BENCH_api_context.json"

EPS_FILTER = 1e-5
RANK_COUNTS = (1, 2, 4)


def run_session_reuse_benchmark():
    """One plan build amortized across a session vs a fresh context per call."""
    system, blocked, coo, mu = build_system()
    repeats = max(3, int(round(5 * bench_scale())))
    config = EngineConfig(engine="batched")

    context = SubmatrixContext(config)
    start = time.perf_counter()
    reference = context.apply(blocked, "eigen", coo=coo, mu=mu)
    cold = time.perf_counter() - start

    warm_samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        result = context.apply(blocked, "eigen", coo=coo, mu=mu)
        warm_samples.append(time.perf_counter() - start)
    warm = float(np.median(warm_samples))

    fresh_samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fresh = SubmatrixContext(config).apply(blocked, "eigen", coo=coo, mu=mu)
        fresh_samples.append(time.perf_counter() - start)
    fresh_median = float(np.median(fresh_samples))

    difference = float(
        np.max(
            np.abs(
                block_matrix_to_dense(result.result)
                - block_matrix_to_dense(fresh.result)
            )
        )
    )
    stats = context.stats()
    payload = {
        "system": {
            "molecules": int(system.n_molecules),
            "n_block_cols": int(blocked.n_block_cols),
            "nnz_blocks": int(blocked.nnz_blocks),
        },
        "repeats": repeats,
        "cold_first_call_s": cold,
        "warm_session_median_s": warm,
        "fresh_context_median_s": fresh_median,
        "session_reuse_speedup": fresh_median / warm if warm > 0 else float("inf"),
        "plan_cache": stats["plan_cache"],
        "bitwise_identical": difference == 0.0,
    }
    rows = [
        ["cold first call (plan build + evaluation)", cold, 1.0],
        ["warm session call (plan cached)", warm, cold / warm if warm else 0.0],
        [
            "fresh context per call (no session)",
            fresh_median,
            cold / fresh_median if fresh_median else 0.0,
        ],
    ]
    assert stats["plan_cache"]["misses"] == 1
    assert reference.n_submatrices == result.n_submatrices
    return rows, payload


def run_sharded_bisection_benchmark():
    """Canonical-ensemble μ-bisection, rank-sharded, vs single-process."""
    model = HamiltonianModel()
    system = water_box((2, 1, 1))
    pair = build_matrices(system, model=model)
    n_electrons = 8.0 * system.n_molecules
    repeats = max(2, int(round(3 * bench_scale())))
    context = SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS_FILTER))

    start = time.perf_counter()
    single = context.density(pair.K, pair.S, pair.blocks, n_electrons=n_electrons)
    _ = time.perf_counter() - start  # warm-up: builds and caches the plan
    single_samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        single = context.density(
            pair.K, pair.S, pair.blocks, n_electrons=n_electrons
        )
        single_samples.append(time.perf_counter() - start)
    single_median = float(np.median(single_samples))

    rows = [["single-process", single_median, single.mu_iterations, 0.0, True]]
    per_ranks = []
    for ranks in RANK_COUNTS:
        # warm-up: builds and caches this rank count's sharded pipeline, so
        # the samples measure the steady-state session behaviour
        context.density(
            pair.K, pair.S, pair.blocks, n_electrons=n_electrons, ranks=ranks
        )
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            sharded = context.density(
                pair.K, pair.S, pair.blocks, n_electrons=n_electrons, ranks=ranks
            )
            samples.append(time.perf_counter() - start)
        median = float(np.median(samples))
        difference = float(np.max(np.abs(sharded.density_ao - single.density_ao)))
        bitwise = difference == 0.0 and sharded.mu == single.mu
        per_ranks.append(
            {
                "ranks": ranks,
                "median_wall_time_s": median,
                "mu_iterations": sharded.mu_iterations,
                "max_abs_diff_vs_single": difference,
                "bitwise_identical": bitwise,
            }
        )
        rows.append(
            [f"sharded, {ranks} rank(s)", median, sharded.mu_iterations,
             difference, bitwise]
        )
    payload = {
        "system": {
            "molecules": int(system.n_molecules),
            "n_electrons": n_electrons,
        },
        "repeats": repeats,
        "single_process_median_s": single_median,
        "rank_counts": list(RANK_COUNTS),
        "per_rank_count": per_ranks,
    }
    return rows, payload


def run_api_context_benchmark():
    reuse_rows, reuse_payload = run_session_reuse_benchmark()
    sharded_rows, sharded_payload = run_sharded_bisection_benchmark()
    payload = {
        "benchmark": "api_context",
        "session_reuse": reuse_payload,
        "sharded_bisection": sharded_payload,
    }
    with open(ROOT_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return reuse_rows, sharded_rows, payload


def _report(reuse_rows, sharded_rows, payload):
    report(
        "api_context_session_reuse",
        ["path", "median seconds", "speedup vs cold"],
        reuse_rows,
        "Session reuse through SubmatrixContext "
        f"({payload['session_reuse']['system']['molecules']} molecules)",
    )
    report(
        "api_context_sharded_bisection",
        ["path", "median seconds", "mu iterations", "max |diff|", "bitwise"],
        sharded_rows,
        "Rank-sharded canonical mu-bisection "
        f"({payload['sharded_bisection']['system']['molecules']} molecules)",
    )


@pytest.mark.benchmark(group="api")
def test_api_context(benchmark):
    reuse_rows, sharded_rows, payload = benchmark.pedantic(
        run_api_context_benchmark, rounds=1, iterations=1
    )
    _report(reuse_rows, sharded_rows, payload)
    reuse = payload["session_reuse"]
    assert reuse["bitwise_identical"]
    # the warm session call skips the plan build the fresh context pays
    assert reuse["warm_session_median_s"] <= reuse["fresh_context_median_s"]
    for entry in payload["sharded_bisection"]["per_rank_count"]:
        assert entry["bitwise_identical"]


if __name__ == "__main__":
    table_reuse, table_sharded, result_payload = run_api_context_benchmark()
    _report(table_reuse, table_sharded, result_payload)
    print(f"wrote {ROOT_JSON}")
