"""Benchmark — asynchronous overlapped pipeline vs the bulk-synchronous path.

Quantifies the three promises of the arrival-driven execution engine:

* **No overlap to exploit → (near-)zero overhead.**  A rank-1 canonical
  density has no inbound exchange, so ``overlap=True`` only pays the
  chunk-posting machinery.  The median-of-N overhead against the
  synchronous path is recorded; the acceptance bar is ≤ 5 %.
* **Real sparsity → most of the exchange hides behind compute.**  On a
  64-molecule water box whose filtered pattern is genuinely sparse
  (342–402 submatrix dimensions out of 1536), the per-rank greedy
  timelines of the overlapped run hide ≥ 50 % of the modeled
  initialization exchange at ranks 4 and 8 — measured from the engine's
  :class:`~repro.core.overlap.OverlapReport`, with the overlapped results
  asserted bitwise identical to the synchronous ones.  (The evaluation
  callable is a cheap pass-through: the modeled timeline depends on the
  flop-constant cost model, not on the callable's wall time.)
* **Trajectory steps prefetch.**  With ``EngineConfig(overlap=True)`` the
  trajectory driver prepares step i+1 while step i evaluates; the per-step
  records carry the hidden-exchange accounting and the densities stay
  bitwise identical to the synchronous driver's.

Writes ``BENCH_async_overlap.json`` at the repository root so future PRs
can track the trajectory, plus the usual table under
``benchmarks/results``.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np
import pytest

from repro.api import EngineConfig, SubmatrixContext
from repro.api.density import prepare_step
from repro.chem import HamiltonianModel, build_matrices, water_box
from repro.core.runner import DistributedSubmatrixPipeline
from repro.dbcsr.convert import block_matrix_to_csr

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from common import bench_scale, report  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ROOT_JSON = REPO_ROOT / "BENCH_async_overlap.json"

EPS_FILTER = 1e-5
#: Filter for the hidden-exchange measurement: strong enough that the
#: 64-molecule box's submatrices stay well below the full basis size, so
#: segment arrivals spread across buckets instead of all gating bucket 0.
SPARSE_EPS_FILTER = 2e-3
N_ELECTRONS_PER_MOLECULE = 8.0
OVERLAP_RANKS = (4, 8)
HIDDEN_ACCEPTANCE = 0.5


def _density(pair, n_electrons, overlap, ranks):
    config = EngineConfig(engine="batched", eps_filter=EPS_FILTER, overlap=overlap)
    with SubmatrixContext(config) as context:
        start = time.perf_counter()
        result = context.density(
            pair.K, pair.S, pair.blocks, n_electrons=n_electrons, ranks=ranks
        )
        elapsed = time.perf_counter() - start
    return result, elapsed


def _rank1_overhead(pair, n_electrons, repetitions):
    # one untimed pass per variant so BLAS/kernel warmup does not land on
    # whichever variant happens to run first
    _density(pair, n_electrons, overlap=False, ranks=1)
    _density(pair, n_electrons, overlap=True, ranks=1)
    sync_times, overlap_times = [], []
    baseline = overlapped = None
    for _ in range(repetitions):
        baseline, elapsed = _density(pair, n_electrons, overlap=False, ranks=1)
        sync_times.append(elapsed)
        overlapped, elapsed = _density(pair, n_electrons, overlap=True, ranks=1)
        overlap_times.append(elapsed)
    sync_median = float(np.median(sync_times))
    overlap_median = float(np.median(overlap_times))
    overhead = (
        (overlap_median - sync_median) / sync_median if sync_median > 0 else 0.0
    )
    return {
        "repetitions": repetitions,
        "sync_median_s": sync_median,
        "overlap_median_s": overlap_median,
        "overhead_fraction": overhead,
        "overhead_percent": 100.0 * overhead,
        "bitwise_identical": bool(
            np.array_equal(baseline.density_ao, overlapped.density_ao)
        ),
        "acceptance_max_percent": 5.0,
    }


def _hidden_exchange(ranks_list):
    system = water_box(2)
    pair = build_matrices(system, model=HamiltonianModel())
    prepared = prepare_step(pair.K, pair.S, pair.blocks, SPARSE_EPS_FILTER)
    coo, block_k = prepared.coo, prepared.block_k
    sizes = list(prepared.block_sizes)

    def passthrough(stack):
        return stack

    measurements = {}
    for ranks in ranks_list:
        sync = DistributedSubmatrixPipeline(coo, sizes, ranks).run(
            block_k, batch_function=passthrough
        )
        start = time.perf_counter()
        overlapped = DistributedSubmatrixPipeline(coo, sizes, ranks).run(
            block_k, batch_function=passthrough, overlap=True
        )
        wall = time.perf_counter() - start
        bitwise = bool(
            np.array_equal(
                block_matrix_to_csr(overlapped.result).toarray(),
                block_matrix_to_csr(sync.result).toarray(),
            )
        )
        overlap = overlapped.overlap
        measurements[str(ranks)] = {
            "ranks": ranks,
            "n_submatrices": len(overlapped.submatrix_dimensions),
            "max_submatrix_dimension": int(max(overlapped.submatrix_dimensions)),
            "exchange_hidden_fraction": float(overlap.exchange_hidden_fraction),
            "overlap_seconds": float(overlap.overlap_seconds),
            "modeled_exchange_s": float(overlap.max_exchange_seconds),
            "modeled_compute_s": float(overlap.max_compute_seconds),
            "modeled_sync_s": float(overlap.modeled_sync_seconds),
            "modeled_async_s": float(overlap.modeled_async_seconds),
            "bitwise_identical": bitwise,
            "wall_s": wall,
        }
    return {
        "system": {
            "molecules": int(system.n_molecules),
            "n_basis": int(sum(sizes)),
            "eps_filter": SPARSE_EPS_FILTER,
        },
        "acceptance_min_fraction": HIDDEN_ACCEPTANCE,
        "per_ranks": measurements,
    }


def _trajectory_overlap(pair, n_electrons, n_steps):
    steps = [(pair.K * (1.0 + 1e-4 * s), pair.S) for s in range(n_steps)]
    with SubmatrixContext(
        EngineConfig(engine="batched", eps_filter=EPS_FILTER)
    ) as context:
        start = time.perf_counter()
        sync = context.trajectory(
            steps, pair.blocks, n_electrons=n_electrons, ranks=2
        )
        sync_time = time.perf_counter() - start
    with SubmatrixContext(
        EngineConfig(engine="batched", eps_filter=EPS_FILTER, overlap=True)
    ) as context:
        start = time.perf_counter()
        overlapped = context.trajectory(
            steps, pair.blocks, n_electrons=n_electrons, ranks=2
        )
        overlap_time = time.perf_counter() - start
    bitwise = all(
        np.array_equal(before.density_ao, after.density_ao)
        and before.mu == after.mu
        for before, after in zip(sync.results, overlapped.results)
    )
    return {
        "n_steps": n_steps,
        "ranks": 2,
        "sync_run_s": sync_time,
        "overlap_run_s": overlap_time,
        "steps_prefetched": int(overlapped.stats.steps_prefetched),
        "overlap_seconds": float(overlapped.stats.overlap_seconds),
        "exchange_hidden_fraction": float(
            overlapped.stats.exchange_hidden_fraction
        ),
        "bitwise_identical": bool(bitwise),
    }


def run_async_overlap_benchmark():
    scale = bench_scale()
    system = water_box(1)
    pair = build_matrices(system, model=HamiltonianModel())
    n_electrons = N_ELECTRONS_PER_MOLECULE * system.n_molecules

    overhead = _rank1_overhead(
        pair, n_electrons, repetitions=max(3, int(round(5 * scale)))
    )
    hidden = _hidden_exchange(OVERLAP_RANKS)
    trajectory = _trajectory_overlap(
        pair, n_electrons, n_steps=max(3, int(round(5 * scale)))
    )

    payload = {
        "benchmark": "async_overlap",
        "rank1_overhead": overhead,
        "hidden_exchange": hidden,
        "trajectory_overlap": trajectory,
    }
    rows = [
        [
            "rank-1 synchronous (baseline)",
            overhead["sync_median_s"],
            "-",
            True,
        ],
        [
            "rank-1 overlapped, nothing to hide",
            overhead["overlap_median_s"],
            f"{overhead['overhead_percent']:+.2f}% overhead",
            overhead["bitwise_identical"],
        ],
    ]
    for measurement in hidden["per_ranks"].values():
        rows.append(
            [
                f"overlapped run, {measurement['ranks']} ranks "
                f"(dim ≤ {measurement['max_submatrix_dimension']})",
                measurement["wall_s"],
                f"{measurement['exchange_hidden_fraction']:.1%} of exchange hidden",
                measurement["bitwise_identical"],
            ]
        )
    prefetch_speedup = (
        trajectory["sync_run_s"] / trajectory["overlap_run_s"]
        if trajectory["overlap_run_s"]
        else 1.0
    )
    rows.append(
        [
            f"trajectory ({trajectory['n_steps']} steps, "
            f"{trajectory['steps_prefetched']} prefetched)",
            trajectory["overlap_run_s"],
            f"{prefetch_speedup:.2f}x vs synchronous driver",
            trajectory["bitwise_identical"],
        ]
    )
    with open(ROOT_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return rows, payload


def _report(rows, payload):
    hidden = payload["hidden_exchange"]
    report(
        "async_overlap",
        ["path", "seconds", "overlap", "bitwise identical"],
        rows,
        f"Asynchronous overlapped pipeline "
        f"({hidden['system']['molecules']} molecules / "
        f"{hidden['system']['n_basis']} basis functions for the hidden-"
        f"exchange measurement)",
    )


@pytest.mark.benchmark(group="core")
def test_async_overlap(benchmark):
    rows, payload = benchmark.pedantic(
        run_async_overlap_benchmark, rounds=1, iterations=1
    )
    _report(rows, payload)
    assert payload["rank1_overhead"]["bitwise_identical"]
    assert payload["trajectory_overlap"]["bitwise_identical"]
    for measurement in payload["hidden_exchange"]["per_ranks"].values():
        assert measurement["bitwise_identical"]
        # the modeled timelines are deterministic, so this bar is exact
        assert measurement["exchange_hidden_fraction"] >= HIDDEN_ACCEPTANCE


if __name__ == "__main__":
    table_rows, result_payload = run_async_overlap_benchmark()
    _report(table_rows, result_payload)
    overhead_percent = result_payload["rank1_overhead"]["overhead_percent"]
    print(f"rank-1 clean-run overhead: {overhead_percent:+.2f}% (acceptance ≤ 5%)")
    # the deterministic bars (bitwise identity, modeled hidden fraction)
    # are enforced even in smoke-scale CI runs; the wall-clock overhead
    # bar is left to the full-scale pytest run — medians of 3 repetitions
    # on a shared runner are too noisy to gate on
    assert result_payload["rank1_overhead"]["bitwise_identical"]
    assert result_payload["trajectory_overlap"]["bitwise_identical"]
    for ranks_measurement in result_payload["hidden_exchange"]["per_ranks"].values():
        assert ranks_measurement["bitwise_identical"]
        assert (
            ranks_measurement["exchange_hidden_fraction"] >= HIDDEN_ACCEPTANCE
        ), ranks_measurement
    print(f"wrote {ROOT_JSON}")
