"""Ablation — greedy FLOP-based load balancing vs. equal submatrix counts.

Paper, Sec. IV-E: submatrix dimensions vary with the local chemistry, so
assigning the same *number* of submatrices to every rank does not balance the
*work*; the implementation therefore assigns consecutive chunks greedily by
the O(n³) cost estimate.  This ablation compares the two strategies on a
deliberately inhomogeneous system (a water slab where one region carries a
much larger basis, mimicking a solute in a solvent).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chem import HamiltonianModel, build_block_pattern, water_box
from repro.chem.basis import BasisSet
from repro.core import (
    assign_consecutive_chunks,
    load_imbalance,
    single_column_groups,
    submatrix_flop_costs,
)
from repro.dbcsr import CooBlockList

from common import report

EPS_FILTER = 1e-5
N_RANKS = 16


def run_ablation():
    # inhomogeneous block sizes: most molecules use SZV-sized blocks, a
    # contiguous "solute" region uses DZVP-sized blocks
    system = water_box((4, 1, 1))
    pattern, blocks = build_block_pattern(
        system, model=HamiltonianModel(), eps_filter=EPS_FILTER
    )
    block_sizes = np.array(blocks.block_sizes, dtype=int)
    solute = slice(40, 72)
    block_sizes[solute] = 23  # DZVP water block size

    coo = CooBlockList.from_pattern(pattern)
    grouping = single_column_groups(system.n_molecules)
    dims = grouping.submatrix_dimensions(coo, block_sizes)
    costs = submatrix_flop_costs(dims)

    greedy = assign_consecutive_chunks(costs, N_RANKS)
    per_rank = len(costs) // N_RANKS
    equal_counts = [
        (start, min(start + per_rank, len(costs)))
        for start in range(0, len(costs), per_rank)
    ][:N_RANKS]
    equal_counts[-1] = (equal_counts[-1][0], len(costs))

    rows = [
        ["greedy (FLOP-based, Sec. IV-E)", load_imbalance(costs, greedy)],
        ["equal submatrix counts", load_imbalance(costs, equal_counts)],
    ]
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_load_balance(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report(
        "ablation_load_balance",
        ["assignment strategy", "load imbalance (max/mean)"],
        rows,
        "Ablation: load balancing strategies on an inhomogeneous system",
    )
    greedy, equal = rows[0][1], rows[1][1]
    assert greedy <= equal
    assert greedy < 2.0
