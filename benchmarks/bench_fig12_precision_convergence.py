"""Figure 12 — convergence of the third-order sign iteration in different
precisions (energy view).

Paper: the combined submatrix of 32 water molecules (from an NREP = 5 SZV
system) is purified with the third-order Padé iteration (Eq. 19) in FP16,
FP16', FP32 and FP64 on a GPU; the resulting energies converge within 6-8
iterations and stay within ~5 meV/atom of the converged FP64 result even in
half precision.

Reproduction: the combined submatrix of the first 32-molecule building block
of a 64-molecule slab, iterated with the emulated precision modes; the
per-iteration energy difference to the converged FP64 result is reported.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel import PRECISION_MODES, mixed_precision_sign_iteration
from repro.chem import orthogonalized_ks
from repro.core.submatrix import extract_block_submatrix
from repro.dbcsr.convert import block_matrix_from_csr

from common import report

EPS_FILTER = 1e-5
N_ITERATIONS = 12


def _combined_submatrix(pair, mu):
    """Dense orthogonalized-KS submatrix of the first 32-molecule block."""
    k_ortho, _ = orthogonalized_ks(pair.K, pair.S, eps_filter=EPS_FILTER)
    blocked = block_matrix_from_csr(k_ortho, pair.blocks.block_sizes)
    submatrix = extract_block_submatrix(blocked, list(range(32)))
    return submatrix.data


def run_figure12(pair, mu, n_atoms_per_block=96):
    submatrix = _combined_submatrix(pair, mu)
    histories = {}
    for mode in ("FP16", "FP16'", "FP32", "FP64"):
        histories[mode] = mixed_precision_sign_iteration(
            submatrix, mode, mu=mu, n_iterations=N_ITERATIONS
        )
    reference_energy = histories["FP64"].energies[-1]
    rows = []
    for iteration in range(N_ITERATIONS):
        row = [iteration + 1]
        for mode in ("FP16", "FP16'", "FP32", "FP64"):
            difference_mev_per_atom = (
                (histories[mode].energies[iteration] - reference_energy)
                / n_atoms_per_block
                * 1000.0
            )
            row.append(difference_mev_per_atom)
        rows.append(row)
    return rows, submatrix.shape[0]


@pytest.mark.benchmark(group="fig12")
def test_fig12_precision_convergence(benchmark, water64_pair, gap_mu):
    _, pair = water64_pair
    rows, dimension = benchmark.pedantic(
        lambda: run_figure12(pair, gap_mu), rounds=1, iterations=1
    )
    report(
        "fig12_precision_convergence",
        [
            "iteration",
            "FP16 (meV/atom)",
            "FP16' (meV/atom)",
            "FP32 (meV/atom)",
            "FP64 (meV/atom)",
        ],
        rows,
        "Figure 12: energy difference to the converged FP64 result per sign "
        f"iteration (combined submatrix of 32 H2O, dimension {dimension})",
    )
    table = np.array(rows, dtype=float)
    # FP64 converges to itself
    assert abs(table[-1, 4]) < 1e-9
    # FP32 ends within a small fraction of a meV/atom of FP64
    assert abs(table[-1, 3]) < 1.0
    # half precision stays within ~100 meV/atom (paper: ~5 meV/atom on real
    # tensor cores, whose FP32 accumulate is more accurate than the pure
    # float16 NumPy emulation used here)
    assert abs(table[-1, 1]) < 100.0
    # the energies converge: late iterations change much less than early ones
    early_change = abs(table[1, 4] - table[0, 4])
    late_change = abs(table[-1, 4] - table[-2, 4])
    assert late_change <= early_change + 1e-12
