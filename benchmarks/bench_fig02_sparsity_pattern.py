"""Figure 2 — block sparsity pattern of the orthogonalized Kohn–Sham matrix.

Paper: the block-based sparsity pattern for 864 H2O molecules (SZV basis,
cutoff 1e-5) shows a banded structure because atoms are indexed consecutively
within 32-molecule building blocks.

Reproduction: the same 864-molecule box (NREP = 3), pattern-level.  The
benchmark reports the block occupation, the (block) bandwidth and the
locality measure that matters for the submatrix method: the fraction of
non-zero blocks within a band of ± a few building blocks of the diagonal.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import block_occupation
from repro.chem import build_block_pattern, water_box

from common import bench_scale, report

EPS_FILTER = 1e-5


def run_figure2():
    nrep = 3 if bench_scale() >= 1.0 else 2
    system = water_box(nrep)
    pattern, blocks = build_block_pattern(system, eps_filter=EPS_FILTER)
    coo = pattern.tocoo()
    band_distance = np.abs(coo.row - coo.col)
    n_blocks = pattern.shape[0]
    rows = [
        ["molecules", system.n_molecules],
        ["atoms", system.n_atoms],
        ["block dimension", n_blocks],
        ["non-zero blocks", pattern.nnz],
        ["block occupation", block_occupation(pattern)],
        ["max |row - col| (blocks)", int(band_distance.max())],
        ["mean |row - col| (blocks)", float(band_distance.mean())],
        [
            "fraction within +-64 blocks of diagonal",
            float(np.mean(band_distance <= 64)),
        ],
        [
            "fraction within +-128 blocks of diagonal",
            float(np.mean(band_distance <= 128)),
        ],
    ]
    return rows, pattern, system


@pytest.mark.benchmark(group="fig02")
def test_fig02_sparsity_pattern(benchmark):
    rows, pattern, system = benchmark.pedantic(run_figure2, rounds=1, iterations=1)
    report(
        "fig02_sparsity_pattern",
        ["quantity", "value"],
        rows,
        "Figure 2: block sparsity pattern of the orthogonalized KS matrix "
        f"({system.n_molecules} H2O, SZV, eps_filter={EPS_FILTER:g})",
    )
    # shape checks: the matrix is block-sparse (not dense) and strongly banded
    occupation = block_occupation(pattern)
    assert occupation < 0.9
    coo = pattern.tocoo()
    band_distance = np.abs(coo.row - coo.col)
    # consecutive indexing of building blocks concentrates non-zeros near the
    # diagonal: the mean band distance is far below the random expectation
    random_expectation = pattern.shape[0] / 3.0
    assert band_distance.mean() < random_expectation
