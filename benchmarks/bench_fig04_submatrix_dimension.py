"""Figure 4 — submatrix dimension vs. system size for SZV and DZVP.

Paper: the dimension of the (block-based) submatrices grows with the system
size only until the interaction radius fits into the box (~200 molecules for
the SZV water system at eps = 1e-5); beyond that it saturates, which is what
makes the submatrix method linear-scaling.  The DZVP basis produces both a
larger total dimension and larger submatrices.

Reproduction: the same analysis at the sparsity-pattern level for water boxes
of 32–2048 molecules (pattern-level construction handles these sizes easily).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chem import HamiltonianModel, build_block_pattern, water_box
from repro.chem.basis import DZVP, SZV
from repro.core import single_column_groups
from repro.dbcsr import CooBlockList

from common import bench_scale, report

EPS_FILTER = 1e-5


def run_figure4():
    replications = [1, 2, 3, 4]
    if bench_scale() < 1.0:
        replications = [1, 2]
    rows = []
    for basis in (SZV, DZVP):
        model = HamiltonianModel(basis=basis)
        for nrep in replications:
            system = water_box(nrep)
            pattern, blocks = build_block_pattern(
                system, model=model, eps_filter=EPS_FILTER
            )
            coo = CooBlockList.from_pattern(pattern)
            grouping = single_column_groups(system.n_molecules)
            dims = grouping.submatrix_dimensions(coo, blocks.block_sizes)
            rows.append(
                [
                    basis.name.split("-")[0],
                    system.n_molecules,
                    int(blocks.n_basis),
                    int(np.max(dims)),
                    float(np.mean(dims)),
                ]
            )
    return rows


@pytest.mark.benchmark(group="fig04")
def test_fig04_submatrix_dimension(benchmark):
    rows = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    report(
        "fig04_submatrix_dimension",
        ["basis", "molecules", "dim(K)", "max dim(SM)", "mean dim(SM)"],
        rows,
        "Figure 4: submatrix dimension vs. overall matrix dimension "
        f"(eps_filter={EPS_FILTER:g})",
    )
    by_basis = {}
    for basis, molecules, dim_k, max_dim, mean_dim in rows:
        by_basis.setdefault(basis, []).append((molecules, dim_k, max_dim, mean_dim))
    for basis, series in by_basis.items():
        series.sort()
        dim_k = [entry[1] for entry in series]
        max_dim = [entry[2] for entry in series]
        # the total dimension keeps growing with the system ...
        assert dim_k[-1] > dim_k[0]
        # ... while the submatrix dimension saturates: the last doubling of
        # the system grows the submatrix by far less than 2x
        if len(series) >= 3:
            assert max_dim[-1] <= max_dim[-2] * 1.3
    if "DZVP" in by_basis and "SZV" in by_basis:
        # DZVP submatrices are larger than SZV ones at the same system size
        szv_largest = by_basis["SZV"][-1][2]
        dzvp_largest = by_basis["DZVP"][-1][2]
        assert dzvp_largest > szv_largest
