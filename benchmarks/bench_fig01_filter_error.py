"""Figure 1 — energy error per atom vs. system size for several eps_filter.

Paper: liquid-water systems up to ~25,000 atoms, SZV basis, 2nd-order
Newton–Schulz purification; the error per atom (vs. a eps_filter = 1e-12
reference) is roughly independent of the system size for a fixed threshold
and grows with the threshold.

Reproduction: water boxes of 32–256 molecules (96–768 atoms), the same
Newton–Schulz purification on the filtered orthogonalized Kohn–Sham matrix,
errors measured against the dense cubic-scaling reference.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis import energy_error_per_atom
from repro.chem import (
    build_matrices,
    orthogonalized_ks,
    reference_density_matrix,
    water_box,
)
from repro.chem.density import band_structure_energy, density_from_sign
from repro.signfn import sign_newton_schulz_filtered_dense

from common import bench_scale, report

SYSTEM_REPLICATIONS = [(1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2)]
FILTER_THRESHOLDS = [1e-4, 1e-5, 1e-6, 1e-7]


def _purified_energy(pair, mu, eps_filter):
    """Band-structure energy from filtered Newton–Schulz purification."""
    k_ortho, s_inv_sqrt = orthogonalized_ks(pair.K, pair.S, eps_filter=eps_filter)
    n = k_ortho.shape[0]
    shifted = (k_ortho - mu * sp.identity(n, format="csr")).tocsr()
    sign = sign_newton_schulz_filtered_dense(shifted, eps_filter=eps_filter).sign
    density = density_from_sign(sign, s_inv_sqrt)
    return band_structure_energy(density, pair.K.toarray())


def run_figure1(szv_model, gap_mu):
    replications = SYSTEM_REPLICATIONS
    if bench_scale() < 1.0:
        replications = SYSTEM_REPLICATIONS[:2]
    rows = []
    for factors in replications:
        system = water_box(factors)
        pair = build_matrices(system, model=szv_model)
        reference = reference_density_matrix(pair.K, pair.S, mu=gap_mu)
        for eps in FILTER_THRESHOLDS:
            energy = _purified_energy(pair, gap_mu, eps)
            error = energy_error_per_atom(
                energy, reference.band_energy, system.n_atoms
            )
            rows.append([system.n_atoms, eps, error])
    return rows


@pytest.mark.benchmark(group="fig01")
def test_fig01_filter_error(benchmark, szv_model, gap_mu):
    rows = benchmark.pedantic(
        lambda: run_figure1(szv_model, gap_mu), rounds=1, iterations=1
    )
    report(
        "fig01_filter_error",
        ["atoms", "eps_filter", "error (meV/atom)"],
        rows,
        "Figure 1: energy error per atom vs. system size and eps_filter",
    )
    rows = np.array(rows, dtype=float)
    # shape check 1: for each system, looser filters give larger errors
    for atoms in np.unique(rows[:, 0]):
        subset = rows[rows[:, 0] == atoms]
        loose = subset[subset[:, 1] == 1e-4][0, 2]
        tight = subset[subset[:, 1] == 1e-7][0, 2]
        assert tight <= loose
    # shape check 2: the error per atom does not blow up with system size
    # (it stays within two orders of magnitude across sizes per threshold)
    for eps in FILTER_THRESHOLDS:
        subset = rows[rows[:, 1] == eps][:, 2]
        positive = subset[subset > 0]
        if len(positive) >= 2:
            assert positive.max() / positive.min() < 100.0
