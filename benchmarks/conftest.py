"""Shared fixtures for the benchmark harness."""

from __future__ import annotations

import pytest

from repro.chem import HamiltonianModel, build_matrices, water_box
from repro.parallel import MachineModel


@pytest.fixture(scope="session")
def machine():
    """Machine model calibrated to the paper's evaluation platform."""
    return MachineModel()


@pytest.fixture(scope="session")
def szv_model():
    return HamiltonianModel()


@pytest.fixture(scope="session")
def gap_mu(szv_model):
    """Chemical potential in the HOMO-LUMO gap (grand-canonical runs)."""
    return szv_model.homo_lumo_gap_center()


@pytest.fixture(scope="session")
def water64_pair(szv_model):
    """64-molecule slab and its model matrices (shared by several benches)."""
    system = water_box((2, 1, 1))
    return system, build_matrices(system, model=szv_model)


@pytest.fixture(scope="session")
def water128_pair(szv_model):
    """128-molecule box (2x2x1) and its model matrices."""
    system = water_box((2, 2, 1))
    return system, build_matrices(system, model=szv_model)
