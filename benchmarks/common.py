"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper on a scaled-down
system (the substitutions are documented in DESIGN.md).  The helpers here
centralise system construction, result formatting and persistence so that the
individual benchmarks read like the experiment descriptions in the paper.

Scaling note: the paper's systems range from 768 to 384,000 atoms on 40-1280
cores; the reproduction uses systems of 32-4,000 molecules (96-12,000 atoms)
and simulated ranks.  Environment variable ``REPRO_BENCH_SCALE`` (default 1.0,
set it below 1 for smoke runs and above 1 for more thorough sweeps) scales
the per-benchmark workloads where meaningful.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, Iterable, List, Sequence

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def bench_scale() -> float:
    """Workload scale factor from the environment (default 1.0)."""
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0


def save_results(name: str, payload: Dict) -> pathlib.Path:
    """Persist a benchmark's rows as JSON under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=float)
    return path


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
) -> str:
    """Format rows as a fixed-width text table (printed by every benchmark)."""
    rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1e4 or abs(cell) < 1e-3:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)


def report(name: str, headers: Sequence[str], rows: Sequence[Sequence], title: str) -> None:
    """Print a table and persist it."""
    text = format_table(headers, rows, title=title)
    print("\n" + text + "\n")
    save_results(name, {"title": title, "headers": list(headers), "rows": [list(r) for r in rows]})
