"""Benchmark — rank-sharded submatrix pipeline across rank counts.

Runs the :class:`repro.core.runner.DistributedSubmatrixPipeline` on the
256-block-column water system (same system as ``bench_submatrix_engine``)
for rank counts {1, 2, 4, 8} and records, per rank count:

* wall-clock seconds of a full sharded evaluation (shard extraction →
  bucketed batched eigendecomposition sign → zero-copy scatter),
* the exact packed-segment fetch volume of the modelled initialization
  exchange vs the two whole-block approximations it improves on:
  per-submatrix shipping (no deduplication) and the fast pattern-level
  required-set estimate (``per_group_dedup=False``),
* the FLOP imbalance of the greedy chunked assignment vs the bucket-aware
  whole-stack (LPT) assignment,
* a bitwise-equivalence check against the single-process batched engine.

Writes ``BENCH_sharded_pipeline.json`` at the repository root so future PRs
can track the trajectory, plus the usual table under ``benchmarks/results``.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np
import pytest

from repro.core import DistributedSubmatrixPipeline, PlanCache, SubmatrixMethod
from repro.dbcsr.convert import block_matrix_to_dense
from repro.signfn import (
    sign_via_eigendecomposition,
    sign_via_eigendecomposition_batched,
)

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from bench_submatrix_engine import build_system  # noqa: E402
from common import bench_scale, report  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ROOT_JSON = REPO_ROOT / "BENCH_sharded_pipeline.json"

RANK_COUNTS = (1, 2, 4, 8)


def run_pipeline_benchmark():
    system, blocked, coo, mu = build_system()
    sizes = blocked.row_block_sizes
    repeats = max(3, int(round(5 * bench_scale())))
    cache = PlanCache()

    function = lambda a: sign_via_eigendecomposition(a, mu)  # noqa: E731
    batch_function = lambda s: sign_via_eigendecomposition_batched(s, mu)  # noqa: E731

    reference = SubmatrixMethod(
        function,
        batch_function=batch_function,
        engine="batched",
        plan_cache=cache,
    ).apply_blockwise(blocked, coo=coo)
    reference_dense = block_matrix_to_dense(reference.result)

    per_rank_count = []
    rows = []
    for n_ranks in RANK_COUNTS:
        pipeline = DistributedSubmatrixPipeline(
            coo, sizes, n_ranks, plan_cache=cache
        )
        stacks = DistributedSubmatrixPipeline(
            coo, sizes, n_ranks, balance="stacks", plan_cache=cache
        )
        fast = DistributedSubmatrixPipeline(
            coo, sizes, n_ranks, exact_transfers=False, plan_cache=cache
        )
        result = pipeline.run(
            blocked, function=function, batch_function=batch_function
        )  # warm-up: builds and caches the shards
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            result = pipeline.run(
                blocked, function=function, batch_function=batch_function
            )
            samples.append(time.perf_counter() - start)
        wall = float(np.median(samples))
        difference = float(
            np.max(np.abs(reference_dense - block_matrix_to_dense(result.result)))
        )
        plan = pipeline.transfer_plan
        entry = {
            "n_ranks": n_ranks,
            "median_wall_time_s": wall,
            "segment_fetch_mb": plan.total_segment_fetch_bytes / 1e6,
            "block_fetch_mb": plan.total_fetch_bytes / 1e6,
            "block_fetch_no_dedup_mb": plan.total_fetch_bytes_without_dedup / 1e6,
            "block_fetch_fast_estimate_mb": fast.transfer_plan.total_fetch_bytes
            / 1e6,
            "writeback_mb": plan.total_writeback_bytes / 1e6,
            "flop_imbalance_chunks": pipeline.traffic_log().flop_imbalance(),
            "flop_imbalance_stacks": stacks.traffic_log().flop_imbalance(),
            "max_abs_diff_vs_batched": difference,
            "bitwise_identical": difference == 0.0,
        }
        per_rank_count.append(entry)
        rows.append(
            [
                n_ranks,
                wall,
                entry["segment_fetch_mb"],
                entry["block_fetch_no_dedup_mb"],
                entry["block_fetch_fast_estimate_mb"],
                entry["flop_imbalance_chunks"],
                entry["flop_imbalance_stacks"],
                difference,
            ]
        )

    payload = {
        "benchmark": "sharded_pipeline",
        "system": {
            "molecules": int(system.n_molecules),
            "n_block_cols": int(blocked.n_block_cols),
            "nnz_blocks": int(blocked.nnz_blocks),
        },
        "repeats": repeats,
        "rank_counts": list(RANK_COUNTS),
        "per_rank_count": per_rank_count,
    }
    with open(ROOT_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return rows, payload


@pytest.mark.benchmark(group="pipeline")
def test_sharded_pipeline(benchmark):
    rows, payload = benchmark.pedantic(run_pipeline_benchmark, rounds=1, iterations=1)
    report(
        "sharded_pipeline",
        [
            "ranks",
            "median seconds",
            "segment fetch [MB]",
            "blocks w/o dedup [MB]",
            "blocks fast est. [MB]",
            "imbalance (chunks)",
            "imbalance (stacks)",
            "max |diff|",
        ],
        rows,
        "Rank-sharded pipeline across rank counts "
        f"({payload['system']['molecules']} molecules)",
    )
    for entry in payload["per_rank_count"]:
        assert entry["bitwise_identical"]
        # exact segment accounting never exceeds either whole-block model
        assert entry["segment_fetch_mb"] <= entry["block_fetch_mb"] + 1e-9
        assert (
            entry["segment_fetch_mb"]
            <= entry["block_fetch_fast_estimate_mb"] + 1e-9
        )


if __name__ == "__main__":
    table_rows, result_payload = run_pipeline_benchmark()
    report(
        "sharded_pipeline",
        [
            "ranks",
            "median seconds",
            "segment fetch [MB]",
            "blocks w/o dedup [MB]",
            "blocks fast est. [MB]",
            "imbalance (chunks)",
            "imbalance (stacks)",
            "max |diff|",
        ],
        table_rows,
        "Rank-sharded pipeline across rank counts "
        f"({result_payload['system']['molecules']} molecules)",
    )
    print(f"wrote {ROOT_JSON}")
