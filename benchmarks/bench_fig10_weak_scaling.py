"""Figure 10 — weak scaling of the submatrix method vs. Newton–Schulz.

Paper: starting from 12,000 atoms on 40 cores, system size and core count are
grown together (replication along one dimension only) up to 384,000 atoms on
1280 cores.  Both methods lose some efficiency, but the submatrix method's
weak-scaling efficiency stays consistently above Newton–Schulz's.

Reproduction: the distributed cost model on pattern-level water slabs
(one-dimensional replication, like the paper's weak-scaling systems), growing
the slab and the simulated rank count by the same factors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import parallel_efficiency
from repro.chem import build_block_pattern, water_box
from repro.core import newton_schulz_cost, submatrix_method_cost
from repro.core.runner import estimate_newton_schulz_iterations

from common import bench_scale, report

EPS_FILTER = 1e-5
BASE_RANKS = 40
SCALES = [1, 2, 4, 8]
BASE_SLAB = 3  # replications of the 32-molecule cell along x at scale 1


def run_figure10(machine):
    scales = SCALES if bench_scale() >= 1.0 else SCALES[:2]
    iterations = estimate_newton_schulz_iterations(EPS_FILTER)
    rows = []
    submatrix_times = []
    newton_times = []
    for scale in scales:
        system = water_box((BASE_SLAB * scale, 1, 1))
        pattern, blocks = build_block_pattern(system, eps_filter=EPS_FILTER)
        ranks = BASE_RANKS * scale
        submatrix = submatrix_method_cost(pattern, blocks.block_sizes, ranks, machine)
        newton = newton_schulz_cost(
            pattern, blocks.block_sizes, ranks, machine, n_iterations=iterations
        )
        submatrix_times.append(submatrix.simulated.total)
        newton_times.append(newton.simulated.total)
        rows.append(
            [
                system.n_atoms,
                ranks,
                submatrix.simulated.total,
                newton.simulated.total,
            ]
        )
    submatrix_eff = parallel_efficiency(
        submatrix_times, [BASE_RANKS * s for s in scales], mode="weak"
    )
    newton_eff = parallel_efficiency(
        newton_times, [BASE_RANKS * s for s in scales], mode="weak"
    )
    for row, se, ne in zip(rows, submatrix_eff, newton_eff):
        row.extend([float(se), float(ne)])
    return rows


@pytest.mark.benchmark(group="fig10")
def test_fig10_weak_scaling(benchmark, machine):
    rows = benchmark.pedantic(lambda: run_figure10(machine), rounds=1, iterations=1)
    report(
        "fig10_weak_scaling",
        [
            "atoms",
            "cores",
            "submatrix (s)",
            "newton-schulz (s)",
            "submatrix efficiency",
            "newton-schulz efficiency",
        ],
        rows,
        f"Figure 10: weak scaling (eps={EPS_FILTER:g}, {BASE_RANKS} cores per unit)",
    )
    submatrix_eff = np.array([row[4] for row in rows])
    newton_eff = np.array([row[5] for row in rows])
    # the submatrix method weak-scales at least as well as Newton-Schulz at
    # the largest scale (the paper's headline observation for Fig. 10)
    assert submatrix_eff[-1] >= newton_eff[-1]
    # efficiencies are <= 1 and not absurdly low
    assert submatrix_eff[-1] > 0.2
