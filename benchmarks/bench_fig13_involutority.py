"""Figure 13 — deviation from involutority ‖X² − I‖_F per iteration and
precision.

Paper: the involutority violation of the third-order sign iteration drops to
~1e-12 in FP64, ~1e-5 in FP32 and plateaus at a much higher noise floor in
FP16/FP16'; this (not the energy) is the appropriate convergence criterion.

Reproduction: same setup as Fig. 12, reporting the involutority history.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel import mixed_precision_sign_iteration
from repro.chem import orthogonalized_ks
from repro.core.submatrix import extract_block_submatrix
from repro.dbcsr.convert import block_matrix_from_csr

from common import report

EPS_FILTER = 1e-5
N_ITERATIONS = 12
MODES = ("FP16", "FP16'", "FP32", "FP64")


def run_figure13(pair, mu):
    k_ortho, _ = orthogonalized_ks(pair.K, pair.S, eps_filter=EPS_FILTER)
    blocked = block_matrix_from_csr(k_ortho, pair.blocks.block_sizes)
    submatrix = extract_block_submatrix(blocked, list(range(32))).data
    histories = {
        mode: mixed_precision_sign_iteration(
            submatrix, mode, mu=mu, n_iterations=N_ITERATIONS
        )
        for mode in MODES
    }
    rows = []
    for iteration in range(N_ITERATIONS):
        rows.append(
            [iteration + 1]
            + [histories[mode].involutority[iteration] for mode in MODES]
        )
    return rows


@pytest.mark.benchmark(group="fig13")
def test_fig13_involutority(benchmark, water64_pair, gap_mu):
    _, pair = water64_pair
    rows = benchmark.pedantic(
        lambda: run_figure13(pair, gap_mu), rounds=1, iterations=1
    )
    report(
        "fig13_involutority",
        ["iteration", "FP16", "FP16'", "FP32", "FP64"],
        rows,
        "Figure 13: ||X^2 - I||_F per sign iteration and precision",
    )
    table = np.array(rows, dtype=float)
    floors = {mode: table[:, 1 + index].min() for index, mode in enumerate(MODES)}
    # noise floors are ordered by precision (the core message of Fig. 13)
    assert floors["FP64"] < floors["FP32"] < floors["FP16"]
    # FP64 actually converges to a tiny involutority violation
    assert floors["FP64"] < 1e-8
    # FP16 plateaus at a visible noise floor instead of converging
    assert floors["FP16"] > 1e-4
