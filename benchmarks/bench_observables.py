"""Benchmark — multi-observable evaluation vs. N separate calls.

The observable-generic pipeline's economic argument: requesting
{density, pdos, energy_weighted_density} together runs **one**
eigendecomposition pass per submatrix stack and assembles all three
observables from the shared cache, where three separate session calls
would prepare, plan and decompose three times.  This benchmark measures
that speedup on the 32-molecule water system (acceptance: ≥ 1.5×), plus
a cost/accuracy point for the Chebyshev polynomial-expansion kernel
against the eigendecomposition and Newton–Schulz solvers at fixed μ.

Writes ``BENCH_observables.json`` at the repository root and the usual
table under ``benchmarks/results``.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np
import pytest

from repro.api import EngineConfig, SubmatrixContext
from repro.chem import build_matrices, water_box
from repro.chem.basis import SZV

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from common import bench_scale, report  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ROOT_JSON = REPO_ROOT / "BENCH_observables.json"

OBSERVABLES = ("density", "pdos", "energy_weighted_density")
N_ELECTRONS = 8.0 * 32


def median_time(run, repeats):
    run()  # warm-up: plans, pipelines, executors
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def run_observables_benchmark():
    pair = build_matrices(water_box(1), basis=SZV)
    repeats = max(2, int(round(4 * bench_scale())))
    config = EngineConfig(engine="batched", backend="thread")

    with SubmatrixContext(config) as ctx:
        # one bundled call: single decomposition pass, three observables
        bundled_s = median_time(
            lambda: ctx.observables(
                pair.K,
                pair.S,
                pair.blocks,
                observables=OBSERVABLES,
                n_electrons=N_ELECTRONS,
            ),
            repeats,
        )
        # the counterfactual: three separate single-observable calls
        separate_s = median_time(
            lambda: [
                ctx.observables(
                    pair.K,
                    pair.S,
                    pair.blocks,
                    observables=(name,),
                    n_electrons=N_ELECTRONS,
                )
                for name in OBSERVABLES
            ],
            repeats,
        )
        bundle = ctx.observables(
            pair.K,
            pair.S,
            pair.blocks,
            observables=OBSERVABLES,
            n_electrons=N_ELECTRONS,
        )
        # Chebyshev cost/accuracy point vs eigen and Newton–Schulz at the
        # canonical μ (iterative kernels are grand-canonical only)
        mu = bundle["density"].mu
        kernel_points = {}
        reference = None
        for solver in ("eigen", "newton_schulz", "chebyshev"):
            result = ctx.density(pair.K, pair.S, pair.blocks, mu=mu, solver=solver)
            seconds = median_time(
                lambda: ctx.density(
                    pair.K, pair.S, pair.blocks, mu=mu, solver=solver
                ),
                max(1, repeats // 2),
            )
            if solver == "eigen":
                reference = result
            kernel_points[solver] = {
                "median_wall_time_s": seconds,
                "max_abs_diff_vs_eigen": float(
                    np.max(np.abs(result.density_ao - reference.density_ao))
                ),
            }
        for point in kernel_points.values():
            point["cost_vs_eigen"] = (
                point["median_wall_time_s"]
                / kernel_points["eigen"]["median_wall_time_s"]
            )

    speedup = separate_s / bundled_s
    payload = {
        "benchmark": "observables",
        "system": {
            "molecules": 32,
            "basis": SZV.name,
            "n_basis": int(pair.blocks.n_basis),
        },
        "observables": list(OBSERVABLES),
        "repeats": repeats,
        "multi_observable": {
            "bundled_s": bundled_s,
            "separate_calls_s": separate_s,
            "speedup": speedup,
            "stack_decompositions": int(bundle.stack_decompositions),
        },
        "kernels": kernel_points,
    }
    with open(ROOT_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    rows = [
        ["bundled (3 observables)", bundled_s, 1.0],
        ["3 separate calls", separate_s, speedup],
    ]
    kernel_rows = [
        [
            solver,
            point["median_wall_time_s"],
            point["cost_vs_eigen"],
            point["max_abs_diff_vs_eigen"],
        ]
        for solver, point in kernel_points.items()
    ]
    return rows, kernel_rows, payload


def report_all(rows, kernel_rows, payload):
    report(
        "observables",
        ["evaluation", "median seconds", "speedup of bundling"],
        rows,
        "Multi-observable bundling vs separate calls "
        f"({payload['system']['molecules']} molecules, "
        f"{len(OBSERVABLES)} observables)",
    )
    report(
        "observables_kernels",
        ["kernel", "median seconds", "cost vs eigen", "max |diff| vs eigen"],
        kernel_rows,
        "Sign-kernel cost/accuracy at fixed μ (density only)",
    )


@pytest.mark.benchmark(group="observables")
def test_observables_benchmark(benchmark):
    rows, kernel_rows, payload = benchmark.pedantic(
        run_observables_benchmark, rounds=1, iterations=1
    )
    report_all(rows, kernel_rows, payload)
    # acceptance: bundling must beat three separate calls by ≥ 1.5×
    assert payload["multi_observable"]["speedup"] >= 1.5
    assert payload["kernels"]["chebyshev"]["max_abs_diff_vs_eigen"] < 1e-5


if __name__ == "__main__":
    table_rows, kernel_table, result_payload = run_observables_benchmark()
    report_all(table_rows, kernel_table, result_payload)
    print(f"wrote {ROOT_JSON}")
