"""Benchmark — incremental plan patching vs full replans on drifting patterns.

The incremental replan subsystem exists for the MD/SCF regime where the
block-sparsity pattern of the filtered orthogonalized Kohn–Sham matrix
drifts by a few blocks per step: a full replan rebuilds every extraction
plan, shard layout and transfer plan from scratch, while ``patch()`` diffs
the patterns, rebuilds only the dirty column groups and translates every
untouched index array onto the new packed layout.

Two measurements:

1. **planning trajectory** — a ≥ 8-step sequence of patterns, each differing
   from its predecessor by ≤ 10 % of the blocks; per step we time a full
   ``BlockSubmatrixPlan`` + ``ShardedPlan`` build against an incremental
   ``patch()``, and assert the patched plans are bitwise identical to the
   full ones (index arrays and pack/extract/scatter products);
2. **end-to-end session trajectory** — the same drifting patterns driven
   through ``SubmatrixContext.trajectory(replan="patch")`` vs
   ``replan="full"`` (densities asserted bitwise identical), reporting the
   ``plans_patched`` / ``groups_rebuilt`` accounting, plus a warm-started
   μ-bisection run showing the iteration savings.

Writes ``BENCH_incremental_replan.json`` at the repository root so future
PRs can track the trajectory, plus the usual table under
``benchmarks/results``.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import EngineConfig, SubmatrixContext
from repro.chem.hamiltonian import BlockStructure
from repro.core.plan import BlockSubmatrixPlan, PlanCache
from repro.core.shard import ShardedPlan
from repro.dbcsr.coo import CooBlockList

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from common import bench_scale, report  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ROOT_JSON = REPO_ROOT / "BENCH_incremental_replan.json"

SHARDED_RANKS = 4
#: Fractions of blocks changed per trajectory step (acceptance: ≤ 10 %).
#: "light" is the MD regime the subsystem targets (an atom pair crossing the
#: filter threshold); "heavy" stresses the dirty-group amplification of
#: overlapping submatrices.
DRIFT_FRACTIONS = {"light": 0.005, "heavy": 0.05}


# --------------------------------------------------------------------------- #
# drifting-pattern generators
# --------------------------------------------------------------------------- #
def banded_pattern(n_blocks, bandwidth):
    """Symmetric banded block pattern (the paper's water-box shape)."""
    rows, cols = [], []
    for i in range(n_blocks):
        for j in range(max(0, i - bandwidth), min(n_blocks, i + bandwidth + 1)):
            rows.append(i)
            cols.append(j)
    return CooBlockList(rows, cols, n_blocks, n_blocks)


def drift(coo, rng, n_changes):
    """Symmetrically insert/delete ``n_changes`` off-band block pairs."""
    keys = set(zip(coo.rows.tolist(), coo.cols.tolist()))
    n = coo.n_block_rows
    changed = 0
    while changed < n_changes:
        i, j = (int(x) for x in rng.integers(0, n, 2))
        if i == j:
            continue
        if (i, j) in keys:
            if abs(i - j) <= 1:  # keep the tridiagonal backbone intact
                continue
            keys.discard((i, j))
            keys.discard((j, i))
        else:
            keys.add((i, j))
            keys.add((j, i))
        changed += 1
    return CooBlockList(
        [r for r, _ in keys], [c for _, c in keys], n, n
    )


def pattern_trajectory(n_blocks, bandwidth, n_steps, drift_fraction, rng):
    """≥ 8 patterns, each ≤ 10 % of blocks away from its predecessor."""
    patterns = [banded_pattern(n_blocks, bandwidth)]
    per_step = max(1, int(len(patterns[0]) * drift_fraction / 2))
    for _ in range(n_steps - 1):
        patterns.append(drift(patterns[-1], rng, per_step))
    return patterns


def assert_plans_bitwise_equal(patched, full):
    assert patched.n_values == full.n_values
    assert patched.dimensions == full.dimensions
    for got, want in zip(patched.groups, full.groups):
        assert np.array_equal(got.gather_src, want.gather_src)
        assert np.array_equal(got.gather_dst, want.gather_dst)
        assert np.array_equal(got.scatter_src, want.scatter_src)
        assert np.array_equal(got.scatter_dst, want.scatter_dst)


# --------------------------------------------------------------------------- #
# measurement 1: planning cost, patch vs full
# --------------------------------------------------------------------------- #
def bench_planning(n_blocks, bandwidth, n_steps, drift_fraction, rng):
    sizes = rng.integers(5, 9, n_blocks)
    patterns = pattern_trajectory(n_blocks, bandwidth, n_steps, drift_fraction, rng)
    groups = [[i] for i in range(n_blocks)]
    rank_of_group = np.arange(n_blocks) % SHARDED_RANKS

    full_seconds = 0.0
    patch_seconds = 0.0
    groups_rebuilt = 0
    delta_fractions = []
    previous_plan = None
    previous_sharded = None
    for index, pattern in enumerate(patterns):
        start = time.perf_counter()
        full_plan = BlockSubmatrixPlan(pattern, sizes, groups)
        full_sharded = ShardedPlan(full_plan, rank_of_group, SHARDED_RANKS)
        step_full = time.perf_counter() - start
        if index == 0:
            previous_plan, previous_sharded = full_plan, full_sharded
            continue
        full_seconds += step_full
        delta_fractions.append(
            previous_plan.delta_to(pattern).fraction_changed
        )
        start = time.perf_counter()
        patched_plan = previous_plan.patch(pattern)
        patched_sharded = previous_sharded.patch(patched_plan)
        patch_seconds += time.perf_counter() - start
        assert_plans_bitwise_equal(patched_plan, full_plan)
        groups_rebuilt += patched_plan.patch_report.groups_rebuilt
        previous_plan, previous_sharded = patched_plan, patched_sharded
    replans = len(patterns) - 1
    return {
        "n_blocks": int(n_blocks),
        "n_steps": int(n_steps),
        "blocks_per_pattern": int(len(patterns[0])),
        "max_delta_fraction": float(max(delta_fractions)),
        "full_replan_s_per_step": full_seconds / replans,
        "patch_replan_s_per_step": patch_seconds / replans,
        "speedup": full_seconds / patch_seconds if patch_seconds else float("inf"),
        "groups_rebuilt_per_step": groups_rebuilt / replans,
        "groups_total": int(n_blocks),
        "bitwise_identical": True,  # asserted above, per step
    }


# --------------------------------------------------------------------------- #
# micro-measurement: batched clean-group remap (one searchsorted per patch)
# --------------------------------------------------------------------------- #
def bench_remap_batching(n_blocks, bandwidth, drift_fraction, rng, repeats=20):
    """Per-group vs concatenated translation of clean gather/scatter arrays.

    ``patch()`` ships all clean groups' index arrays through ONE
    ``searchsorted`` over the concatenated batch; this micro-benchmark
    re-times that pass against the per-group formulation it replaced so the
    JSON records the effect alongside the end-to-end patch numbers.  The
    single pass wins when clean groups are numerous and small (per-call
    overhead bound — the tridiagonal/MD regime); with few large groups the
    per-group loop is cache-resident and the concatenated temporaries cost
    more than the calls they save, which is why the batch stays a single
    linear pass instead of anything fancier.
    """
    from repro.core.plan import make_segment_remap

    sizes = rng.integers(5, 9, n_blocks)
    groups = [[i] for i in range(n_blocks)]
    old_pattern = banded_pattern(n_blocks, bandwidth)
    new_pattern = drift(
        old_pattern, rng, max(1, int(len(old_pattern) * drift_fraction / 2))
    )
    old_plan = BlockSubmatrixPlan(old_pattern, sizes, groups)
    new_plan = BlockSubmatrixPlan(new_pattern, sizes, groups)
    delta = old_plan.delta_to(new_pattern)
    _, remap = make_segment_remap(
        old_plan.value_offsets, new_plan.value_offsets, delta.new_id_of_old
    )
    dirty = set(old_plan._dirty_groups(delta, new_pattern).nonzero()[0].tolist())
    clean = [
        array
        for index, group in enumerate(old_plan.groups)
        if index not in dirty
        for array in (group.gather_src, group.scatter_dst)
    ]
    start = time.perf_counter()
    for _ in range(repeats):
        for array in clean:
            remap(array)
    per_group_seconds = (time.perf_counter() - start) / repeats
    lengths = np.cumsum([a.size for a in clean])[:-1]
    start = time.perf_counter()
    for _ in range(repeats):
        np.split(remap(np.concatenate(clean)), lengths)
    batched_seconds = (time.perf_counter() - start) / repeats
    return {
        "clean_arrays": len(clean),
        "positions_translated": int(sum(a.size for a in clean)),
        "per_group_remap_s": per_group_seconds,
        "batched_remap_s": batched_seconds,
        "speedup": per_group_seconds / batched_seconds
        if batched_seconds
        else float("inf"),
    }


# --------------------------------------------------------------------------- #
# measurement 2: end-to-end drifting trajectory through the session API
# --------------------------------------------------------------------------- #
def make_block_structure(n_blocks, block_size):
    sizes = np.full(n_blocks, block_size, dtype=int)
    starts = np.concatenate(([0], np.cumsum(sizes)))
    return BlockStructure(
        block_sizes=sizes,
        block_starts=starts,
        atom_offsets=starts[:-1],
        n_basis=int(starts[-1]),
    )


def drifting_steps(blocks, n_steps, rng, coupling=0.35):
    """(K, S=I) geometry steps whose filtered pattern drifts per step."""
    n = blocks.n_basis
    starts = blocks.block_starts
    n_blocks = blocks.n_blocks
    diagonal = np.sort(rng.uniform(-4.0, 4.0, n))
    base = sp.diags(diagonal).tolil()
    for offset in (1, 2):
        for block in range(n_blocks - offset):
            i, j = int(starts[block]), int(starts[block + offset])
            base[i, j] = base[j, i] = coupling / offset
    base = base.tocsr()
    identity = sp.identity(n, format="csr")
    steps = []
    for step in range(n_steps):
        block = step % (n_blocks - 3)
        i, j = int(starts[block]), int(starts[block + 3])
        bump = sp.lil_matrix((n, n))
        bump[i, j] = bump[j, i] = coupling
        steps.append((base + bump.tocsr(), identity))
    return steps


def bench_session_trajectory(n_blocks, n_steps, rng):
    blocks = make_block_structure(n_blocks, 4)
    steps = drifting_steps(blocks, n_steps, rng)
    n_electrons = float(blocks.n_basis)
    config = EngineConfig(engine="batched", eps_filter=1e-3)
    kwargs = dict(
        n_electrons=n_electrons, mu_tolerance=1e-6, ranks=SHARDED_RANKS
    )

    with SubmatrixContext(config) as context:
        start = time.perf_counter()
        patched = context.trajectory(steps, blocks, replan="patch", **kwargs)
        patch_total = time.perf_counter() - start
    with SubmatrixContext(config) as context:
        start = time.perf_counter()
        full = context.trajectory(steps, blocks, replan="full", **kwargs)
        full_total = time.perf_counter() - start

    bitwise = all(
        np.array_equal(patched[i].density_ao, full[i].density_ao)
        and patched[i].mu == full[i].mu
        for i in range(n_steps)
    )
    assert bitwise, "patched trajectory diverged from full replans"
    assert patched.stats.plans_patched > 0

    # warm-started μ-bisection at finite temperature (strictly monotone count)
    warm_config = EngineConfig(
        engine="batched", eps_filter=1e-3, temperature=30000.0
    )
    with SubmatrixContext(warm_config) as context:
        cold = context.trajectory(
            steps, blocks, n_electrons=n_electrons, mu_tolerance=1e-6
        )
    with SubmatrixContext(warm_config) as context:
        warm = context.trajectory(
            steps,
            blocks,
            n_electrons=n_electrons,
            mu_tolerance=1e-6,
            warm_start_mu=True,
        )
    return {
        "n_steps": int(n_steps),
        "ranks": SHARDED_RANKS,
        "patch": {
            "total_s": patch_total,
            "plans_built": patched.stats.plans_built,
            "plans_patched": patched.stats.plans_patched,
            "groups_rebuilt": patched.stats.groups_rebuilt,
            "pipelines_built": patched.stats.pipelines_built,
            "pipelines_patched": patched.stats.pipelines_patched,
            "pattern_changes": patched.stats.pattern_changes,
        },
        "full": {
            "total_s": full_total,
            "plans_built": full.stats.plans_built,
            "pipelines_built": full.stats.pipelines_built,
        },
        "bitwise_identical": bool(bitwise),
        "warm_start_mu": {
            "cold_mu_iterations": int(
                sum(r.mu_iterations for r in cold.stats.steps)
            ),
            "warm_mu_iterations": int(
                sum(r.mu_iterations for r in warm.stats.steps)
            ),
            "max_mu_difference": float(np.max(np.abs(warm.mus - cold.mus))),
        },
    }


def run_incremental_replan_benchmark():
    scale = bench_scale()
    rng = np.random.default_rng(17)
    n_steps = max(8, int(round(10 * scale)))
    n_blocks = max(48, int(round(160 * scale)))
    planning = {
        name: bench_planning(
            n_blocks=n_blocks,
            bandwidth=4,
            n_steps=n_steps,
            drift_fraction=fraction,
            rng=rng,
        )
        for name, fraction in DRIFT_FRACTIONS.items()
    }
    remap_batching = {
        "banded": bench_remap_batching(
            n_blocks=n_blocks,
            bandwidth=4,
            drift_fraction=DRIFT_FRACTIONS["light"],
            rng=rng,
        ),
        "tridiagonal": bench_remap_batching(
            n_blocks=max(160, 2 * n_blocks),
            bandwidth=1,
            drift_fraction=DRIFT_FRACTIONS["light"],
            rng=rng,
        ),
    }
    session = bench_session_trajectory(
        n_blocks=max(10, int(round(14 * scale))), n_steps=n_steps, rng=rng
    )
    payload = {
        "benchmark": "incremental_replan",
        "planning_trajectory": planning,
        "remap_batching": remap_batching,
        "session_trajectory": session,
    }
    rows = []
    for name, result in planning.items():
        rows.append(
            [
                f"full replan / step ({name} drift, "
                f"≤{result['max_delta_fraction']:.1%} blocks)",
                result["full_replan_s_per_step"],
                result["groups_total"],
                1.0,
            ]
        )
        rows.append(
            [
                f"patched replan / step ({name} drift)",
                result["patch_replan_s_per_step"],
                result["groups_rebuilt_per_step"],
                result["speedup"],
            ]
        )
    with open(ROOT_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return rows, payload


def _report(rows, payload):
    planning = payload["planning_trajectory"]["light"]
    session = payload["session_trajectory"]
    report(
        "incremental_replan",
        ["path", "seconds / replan", "groups rebuilt", "speedup vs full"],
        rows,
        f"Incremental replanning ({planning['n_blocks']} block columns, "
        f"{planning['n_steps']} steps per drift level)",
    )
    for shape, batching in payload["remap_batching"].items():
        print(
            f"remap batching ({shape}): {batching['clean_arrays']} clean index "
            f"arrays ({batching['positions_translated']} positions) in one "
            f"searchsorted pass, {batching['speedup']:.2f}x vs per-group remaps"
        )
    warm = session["warm_start_mu"]
    print(
        f"session trajectory ({session['n_steps']} steps, "
        f"{session['ranks']} ranks): replan='patch' patched "
        f"{session['patch']['plans_patched']} plans "
        f"(rebuilding {session['patch']['groups_rebuilt']} groups) and "
        f"{session['patch']['pipelines_patched']} pipelines; bitwise identical "
        f"to replan='full': {session['bitwise_identical']}"
    )
    print(
        f"warm-started μ-bisection: {warm['warm_mu_iterations']} iterations vs "
        f"{warm['cold_mu_iterations']} cold "
        f"(max |Δμ| {warm['max_mu_difference']:.2e})"
    )


@pytest.mark.benchmark(group="core")
def test_incremental_replan(benchmark):
    rows, payload = benchmark.pedantic(
        run_incremental_replan_benchmark, rounds=1, iterations=1
    )
    _report(rows, payload)
    for planning in payload["planning_trajectory"].values():
        assert planning["n_steps"] >= 8
        assert planning["max_delta_fraction"] <= 0.10
        assert planning["bitwise_identical"]
        assert planning["speedup"] > 1.0
    assert payload["session_trajectory"]["bitwise_identical"]


if __name__ == "__main__":
    table_rows, result_payload = run_incremental_replan_benchmark()
    _report(table_rows, result_payload)
    print(f"wrote {ROOT_JSON}")
