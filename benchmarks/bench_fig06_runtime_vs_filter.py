"""Figure 6 — runtime of the submatrix method vs. Newton–Schulz for various
eps_filter.

Paper: for a 20,736-atom water system on 80 cores, the runtime of both
methods drops as the filter threshold is loosened (the matrices get sparser),
the effect is much stronger for the submatrix method, and the submatrix
method becomes faster than Newton–Schulz for eps_filter > 1e-5.

Reproduction: two views of the same experiment —
(1) *measured* wall-clock times of the in-process implementations on a
    128-molecule box (submatrix eigendecompositions vs. filtered sparse
    Newton–Schulz), and
(2) *simulated* times from the distributed cost model at the paper's scale
    of 80 ranks on a larger (pattern-level) system.
Both views must show the same qualitative behaviour: a crossover in favour of
the submatrix method at loose thresholds.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis import crossover_point
from repro.chem import build_block_pattern, orthogonalized_ks, water_box
from repro.core import newton_schulz_cost, submatrix_method_cost
from repro.core.runner import estimate_newton_schulz_iterations
from repro.api import EngineConfig
from repro.core.sign_dft import SubmatrixDFTSolver
from repro.signfn import sign_newton_schulz_filtered_dense

from common import bench_scale, report

MEASURED_THRESHOLDS = [1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7]
MODEL_THRESHOLDS = [1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8]
MODEL_RANKS = 80


def run_measured(system, pair, mu):
    rows = []
    for eps in MEASURED_THRESHOLDS:
        start = time.perf_counter()
        solver = SubmatrixDFTSolver(
            eps_filter=eps,
            config=EngineConfig(engine="batched", backend="thread", max_workers=2),
        )
        solver.compute_density(pair.K, pair.S, pair.blocks, mu=mu)
        submatrix_seconds = time.perf_counter() - start

        start = time.perf_counter()
        k_ortho, _ = orthogonalized_ks(pair.K, pair.S, eps_filter=eps)
        n = k_ortho.shape[0]
        shifted = (k_ortho - mu * sp.identity(n, format="csr")).tocsr()
        sign_newton_schulz_filtered_dense(shifted, eps_filter=eps)
        newton_seconds = time.perf_counter() - start
        rows.append([eps, submatrix_seconds, newton_seconds])
    return rows


def run_cost_model(machine):
    nrep = 4 if bench_scale() >= 1.0 else 2
    system = water_box(nrep)
    rows = []
    for eps in MODEL_THRESHOLDS:
        pattern, blocks = build_block_pattern(system, eps_filter=eps)
        submatrix = submatrix_method_cost(
            pattern,
            blocks.block_sizes,
            MODEL_RANKS,
            machine,
            exact_transfers=False,
        )
        newton = newton_schulz_cost(
            pattern,
            blocks.block_sizes,
            MODEL_RANKS,
            machine,
            n_iterations=estimate_newton_schulz_iterations(eps),
        )
        rows.append([eps, submatrix.simulated.total, newton.simulated.total])
    return rows


@pytest.mark.benchmark(group="fig06")
def test_fig06_runtime_vs_filter_measured(benchmark, water128_pair, gap_mu):
    system, pair = water128_pair
    rows = benchmark.pedantic(
        lambda: run_measured(system, pair, gap_mu), rounds=1, iterations=1
    )
    report(
        "fig06_runtime_vs_filter_measured",
        ["eps_filter", "submatrix (s)", "newton-schulz (s)"],
        rows,
        f"Figure 6 (measured, {system.n_atoms} atoms, 2 threads): "
        "runtime vs. eps_filter",
    )
    rows = np.array(rows, dtype=float)
    # both methods get faster as the filter is loosened
    assert rows[0, 1] < rows[-1, 1]
    # the submatrix method benefits more strongly from sparsity: its ratio of
    # tightest-to-loosest runtime is larger than Newton-Schulz's
    submatrix_ratio = rows[-1, 1] / rows[0, 1]
    newton_ratio = rows[-1, 2] / rows[0, 2]
    assert submatrix_ratio > newton_ratio


@pytest.mark.benchmark(group="fig06")
def test_fig06_runtime_vs_filter_cost_model(benchmark, machine):
    rows = benchmark.pedantic(lambda: run_cost_model(machine), rounds=1, iterations=1)
    report(
        "fig06_runtime_vs_filter_cost_model",
        ["eps_filter", "submatrix (s, simulated)", "newton-schulz (s, simulated)"],
        rows,
        f"Figure 6 (cost model, {MODEL_RANKS} ranks): simulated runtime vs. eps_filter",
    )
    rows = np.array(rows, dtype=float)
    eps = rows[:, 0]
    submatrix_times = rows[:, 1]
    newton_times = rows[:, 2]
    # the submatrix method's relative cost improves as the filter is loosened:
    # its time ratio to Newton-Schulz is better at the loosest threshold than
    # at the tightest one (the mechanism behind the paper's crossover)
    ratio_loose = submatrix_times[0] / newton_times[0]
    ratio_tight = submatrix_times[-1] / newton_times[-1]
    assert ratio_loose < ratio_tight
    crossing = crossover_point(eps[::-1], submatrix_times[::-1], newton_times[::-1])
    # if the curves cross inside the sweep, the crossover sits at a sensible
    # threshold (paper: ~1e-5)
    assert np.isnan(crossing) or crossing > 1e-9
