"""Benchmark — cost of the resilience layer and of fault recovery.

Quantifies the two promises of the fault-tolerance machinery:

* **No faults → (near-)zero overhead.**  The same canonical density
  workload runs once with ``ResiliencePolicy.disabled()`` (the exact
  pre-resilience execution path: ``execute_ranks`` short-circuits to a
  plain ``map_parallel``) and once with the default active policy but no
  fault injector.  The median-of-N overhead of the active policy is
  recorded; the acceptance bar is ≤ 5 %.
* **Faults → bitwise-identical recovery.**  The same workload runs under
  injected rank crashes (retry/rebalance), under an unrecoverable
  all-ranks crash (degradation to the single-process batched engine) and
  — for the trajectory driver — killed mid-run and resumed from its
  checkpoint.  Every recovered density must equal the fault-free one
  bit for bit; the recovery costs are recorded alongside.

Writes ``BENCH_fault_recovery.json`` at the repository root so future PRs
can track the overhead, plus the usual table under ``benchmarks/results``.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import sys
import tempfile
import time

import numpy as np
import pytest

from repro.api import EngineConfig, ResiliencePolicy, SubmatrixContext
from repro.chem import HamiltonianModel, build_matrices, water_box
from repro.parallel.faults import FaultInjector, FaultPlan

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from common import bench_scale, report  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ROOT_JSON = REPO_ROOT / "BENCH_fault_recovery.json"

EPS_FILTER = 1e-5
N_ELECTRONS_PER_MOLECULE = 8.0
RANKS = 4


def _density(pair, n_electrons, policy):
    config = EngineConfig(
        engine="batched", eps_filter=EPS_FILTER, resilience=policy
    )
    with SubmatrixContext(config) as context:
        start = time.perf_counter()
        result = context.density(
            pair.K, pair.S, pair.blocks, n_electrons=n_electrons, ranks=RANKS
        )
        elapsed = time.perf_counter() - start
    return result, elapsed


def run_fault_recovery_benchmark():
    system = water_box(1)
    pair = build_matrices(system, model=HamiltonianModel())
    n_electrons = N_ELECTRONS_PER_MOLECULE * system.n_molecules
    repetitions = max(3, int(round(5 * bench_scale())))

    # -- overhead: disabled (pre-resilience path) vs active-but-clean ----- #
    disabled_times, active_times = [], []
    baseline = None
    for _ in range(repetitions):
        result, elapsed = _density(
            pair, n_electrons, ResiliencePolicy.disabled()
        )
        disabled_times.append(elapsed)
        baseline = result
        clean, elapsed = _density(pair, n_electrons, ResiliencePolicy())
        active_times.append(elapsed)
    disabled_median = float(np.median(disabled_times))
    active_median = float(np.median(active_times))
    overhead = (
        (active_median - disabled_median) / disabled_median
        if disabled_median > 0
        else 0.0
    )
    clean_bitwise = bool(
        np.array_equal(baseline.density_ao, clean.density_ao)
    )

    # -- recovery: one crashed rank, retried and rebalanced --------------- #
    injector = FaultInjector(FaultPlan.rank_crashes([1], seed=7))
    recovered, recovery_time = _density(
        pair, n_electrons, ResiliencePolicy(fault_injector=injector)
    )
    recovery_bitwise = bool(
        np.array_equal(baseline.density_ao, recovered.density_ao)
    )

    # -- degradation: every rank fails every attempt ---------------------- #
    injector = FaultInjector(
        FaultPlan.rank_crashes(list(range(RANKS)), seed=7, times=None)
    )
    degraded, degraded_time = _density(
        pair, n_electrons, ResiliencePolicy(fault_injector=injector)
    )
    degraded_bitwise = bool(
        np.array_equal(baseline.density_ao, degraded.density_ao)
    )

    # -- checkpoint resume: kill a trajectory at its midpoint ------------- #
    n_steps = max(4, int(round(6 * bench_scale())))
    steps = [(pair.K * (1.0 + 1e-4 * s), pair.S) for s in range(n_steps)]
    config = EngineConfig(engine="batched", eps_filter=EPS_FILTER)
    with SubmatrixContext(config) as context:
        start = time.perf_counter()
        uninterrupted = context.trajectory(
            steps, pair.blocks, n_electrons=n_electrons
        )
        full_time = time.perf_counter() - start

    kill_at = n_steps // 2
    checkpoint_dir = tempfile.mkdtemp(prefix="bench_fault_ckpt_")

    class _Killed(Exception):
        pass

    def dying_steps(index):
        if index == kill_at:
            raise _Killed()
        return steps[index] if index < len(steps) else None

    try:
        with SubmatrixContext(config) as context:
            try:
                context.trajectory(
                    dying_steps,
                    pair.blocks,
                    n_electrons=n_electrons,
                    checkpoint=checkpoint_dir,
                )
            except _Killed:
                pass
        with SubmatrixContext(config) as context:
            start = time.perf_counter()
            resumed = context.trajectory(
                steps,
                pair.blocks,
                n_electrons=n_electrons,
                checkpoint=checkpoint_dir,
            )
            resume_time = time.perf_counter() - start
    finally:
        shutil.rmtree(checkpoint_dir, ignore_errors=True)
    resume_bitwise = all(
        np.array_equal(before.density_ao, after.density_ao)
        and before.mu == after.mu
        for before, after in zip(uninterrupted.results, resumed.results)
    )

    payload = {
        "benchmark": "fault_recovery",
        "system": {
            "molecules": int(system.n_molecules),
            "n_electrons": n_electrons,
            "ranks": RANKS,
            "repetitions": repetitions,
        },
        "overhead": {
            "disabled_median_s": disabled_median,
            "active_clean_median_s": active_median,
            "overhead_fraction": overhead,
            "overhead_percent": 100.0 * overhead,
            "bitwise_identical": clean_bitwise,
            "acceptance_max_percent": 5.0,
        },
        "rank_crash_recovery": {
            "time_s": recovery_time,
            "retries": int(recovered.retries),
            "reassigned_stacks": int(recovered.reassigned_stacks),
            "bitwise_identical": recovery_bitwise,
        },
        "degradation": {
            "time_s": degraded_time,
            "degraded": bool(degraded.degraded),
            "bitwise_identical": degraded_bitwise,
        },
        "checkpoint_resume": {
            "n_steps": n_steps,
            "killed_at_step": kill_at,
            "full_run_s": full_time,
            "resume_run_s": resume_time,
            "steps_resumed": int(resumed.stats.steps_resumed),
            "bitwise_identical": bool(resume_bitwise),
        },
    }
    rows = [
        [
            "resilience disabled (pre-PR baseline)",
            disabled_median,
            0.0,
            True,
        ],
        [
            "resilience active, no faults",
            active_median,
            100.0 * overhead,
            clean_bitwise,
        ],
        [
            "rank crash → retry + rebalance",
            recovery_time,
            100.0 * (recovery_time / disabled_median - 1.0)
            if disabled_median
            else 0.0,
            recovery_bitwise,
        ],
        [
            "all ranks crash → degrade to batched",
            degraded_time,
            100.0 * (degraded_time / disabled_median - 1.0)
            if disabled_median
            else 0.0,
            degraded_bitwise,
        ],
        [
            f"trajectory resume ({kill_at}/{n_steps} steps checkpointed)",
            resume_time,
            100.0 * (resume_time / full_time - 1.0) if full_time else 0.0,
            bool(resume_bitwise),
        ],
    ]
    with open(ROOT_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return rows, payload


def _report(rows, payload):
    system = payload["system"]
    report(
        "fault_recovery",
        ["path", "seconds", "overhead vs baseline (%)", "bitwise identical"],
        rows,
        f"Fault injection and recovery ({system['molecules']} molecules, "
        f"{system['ranks']} ranks)",
    )


@pytest.mark.benchmark(group="api")
def test_fault_recovery(benchmark):
    rows, payload = benchmark.pedantic(
        run_fault_recovery_benchmark, rounds=1, iterations=1
    )
    _report(rows, payload)
    assert payload["overhead"]["bitwise_identical"]
    assert payload["rank_crash_recovery"]["bitwise_identical"]
    assert payload["degradation"]["bitwise_identical"]
    assert payload["checkpoint_resume"]["bitwise_identical"]


if __name__ == "__main__":
    table_rows, result_payload = run_fault_recovery_benchmark()
    _report(table_rows, result_payload)
    overhead_percent = result_payload["overhead"]["overhead_percent"]
    print(f"clean-run overhead: {overhead_percent:+.2f}% (acceptance ≤ 5%)")
    print(f"wrote {ROOT_JSON}")
