"""Ablation — canonical-ensemble μ adjustment on cached eigendecompositions.

Paper, Sec. IV-G / Algorithm 1: adjusting the chemical potential for a fixed
electron count would normally require recomputing the sign function in every
bisection step; caching the per-submatrix eigendecompositions makes the
adjustment almost free.  This ablation measures the canonical solve and
compares it against the naïve alternative (one full grand-canonical solve per
bisection step).
"""

from __future__ import annotations

import time

import pytest

from repro.core.sign_dft import SubmatrixDFTSolver

from common import report

EPS_FILTER = 1e-5


def run_ablation(pair):
    n_electrons = 8 * pair.blocks.n_blocks

    start = time.perf_counter()
    grand = SubmatrixDFTSolver(eps_filter=EPS_FILTER).compute_density(
        pair.K, pair.S, pair.blocks, mu=-3.25
    )
    grand_seconds = time.perf_counter() - start

    start = time.perf_counter()
    canonical = SubmatrixDFTSolver(eps_filter=EPS_FILTER).compute_density(
        pair.K, pair.S, pair.blocks, n_electrons=n_electrons
    )
    canonical_seconds = time.perf_counter() - start

    naive_estimate = grand_seconds * max(1, canonical.mu_iterations)
    rows = [
        ["grand-canonical solve (fixed mu)", grand_seconds, 0],
        [
            "canonical solve (Algorithm 1, cached eigendecompositions)",
            canonical_seconds,
            canonical.mu_iterations,
        ],
        [
            "naive canonical (one full solve per bisection step, estimated)",
            naive_estimate,
            canonical.mu_iterations,
        ],
    ]
    return rows, canonical


@pytest.mark.benchmark(group="ablation")
def test_ablation_mu_bisection(benchmark, water64_pair):
    _, pair = water64_pair
    rows, canonical = benchmark.pedantic(
        lambda: run_ablation(pair), rounds=1, iterations=1
    )
    report(
        "ablation_mu_bisection",
        ["strategy", "seconds", "mu bisection iterations"],
        rows,
        "Ablation: canonical-ensemble chemical-potential adjustment (Alg. 1)",
    )
    grand_seconds = rows[0][1]
    canonical_seconds = rows[1][1]
    naive_seconds = rows[2][1]
    # Algorithm 1 makes the canonical solve cost a small multiple of the
    # grand-canonical solve, far below the naive per-step recomputation
    assert canonical_seconds < 3.0 * grand_seconds
    if canonical.mu_iterations > 3:
        assert canonical_seconds < naive_seconds
    # the electron count is actually matched
    assert abs(canonical.n_electrons - 8 * pair.blocks.n_blocks) < 0.5
