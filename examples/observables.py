#!/usr/bin/env python
"""One decomposition pass, many observables: PDOS, band energy, SCF.

The submatrix method evaluates a matrix function of the Hamiltonian
through independent dense submatrix solves; once the per-submatrix
eigendecompositions are cached, *every* spectral observable is one cheap
assembly away.  This example walks the observable layer on the
32-molecule water system:

1. **a multi-observable request** — ``context.observables(...)`` computes
   {density, pdos, energy_weighted_density} from a single decomposition
   pass (``stack_decompositions`` counts the eigh passes — the same as a
   density-only call),
2. **the projected density of states** — Gaussian-broadened from the
   generating-row spectral weights, integrating back to the electron
   count Algorithm 1's μ-bisection targeted,
3. **the band-structure energy two ways** — g_s·Tr(D_AO K) from the
   density and g_s·Tr(W) from the energy-weighted density matrix,
4. **a density-mixing SCF loop** — :func:`~repro.api.run_scf` iterating
   K(D) = K₀ + c·diag(diag D) to self-consistency on top of the
   trajectory driver (shared plans, warm-started μ across iterations).

Run with:  python examples/observables.py
"""

import numpy as np
import scipy.sparse as sp

from repro.api import EngineConfig, SubmatrixContext, run_scf
from repro.chem import build_matrices, water_box
from repro.chem.basis import SZV

N_ELECTRONS = 8.0 * 32


def main() -> None:
    pair = build_matrices(water_box(1), basis=SZV)
    config = EngineConfig(engine="batched", backend="thread")

    with SubmatrixContext(config) as ctx:
        # ------------------------------------------------------------ #
        # 1. three observables, one decomposition pass
        # ------------------------------------------------------------ #
        bundle = ctx.observables(
            pair.K,
            pair.S,
            pair.blocks,
            observables=("density", "pdos", "energy_weighted_density"),
            n_electrons=N_ELECTRONS,
            observable_params={"pdos": {"broadening": 0.05, "n_points": 500}},
        )
        print(
            f"observables: {', '.join(bundle.observables)}  "
            f"(eigendecomposition passes: {bundle.stack_decompositions})"
        )
        density = bundle["density"]
        print(
            f"mu = {density.mu:+.6f} Ha after {density.mu_iterations} "
            f"bisection steps, N_e = {density.n_electrons:.6f}\n"
        )

        # ------------------------------------------------------------ #
        # 2. the projected density of states
        # ------------------------------------------------------------ #
        pdos = bundle["pdos"]
        occupied = pdos.energies <= pdos.mu
        print(
            f"pdos grid: {len(pdos.energies)} points on "
            f"[{pdos.energies[0]:+.2f}, {pdos.energies[-1]:+.2f}] Ha, "
            f"broadening {pdos.broadening} Ha"
        )
        print(
            f"integrated DOS = {pdos.integrated_states():.3f} states "
            f"(g_s x n_orbitals = {2 * pair.blocks.n_basis})"
        )
        print(
            f"electron count from spectral weights = {pdos.n_electrons:.6f} "
            f"(target {N_ELECTRONS})"
        )
        peak = pdos.energies[np.argmax(pdos.dos * occupied)]
        print(f"strongest occupied DOS peak at {peak:+.3f} Ha\n")

        # ------------------------------------------------------------ #
        # 3. the band-structure energy, two ways
        # ------------------------------------------------------------ #
        weighted = bundle["energy_weighted_density"]
        print(f"E_band from Tr(D K):  {density.band_energy:+.9f} Ha")
        print(f"E_band from Tr(W):    {weighted.band_energy:+.9f} Ha")
        print(
            "difference:           "
            f"{abs(density.band_energy - weighted.band_energy):.2e} Ha\n"
        )

        # ------------------------------------------------------------ #
        # 4. a density-mixing SCF loop
        # ------------------------------------------------------------ #
        coupling = 0.05

        def update(density_ao, iteration):
            # toy self-consistency: an on-site potential proportional to
            # the local charge (symmetric, density-dependent, contractive)
            return pair.K + coupling * sp.diags(np.diag(density_ao))

        scf = run_scf(
            ctx,
            pair.K,
            pair.S,
            pair.blocks,
            update,
            n_electrons=N_ELECTRONS,
            mixing=0.6,
            tolerance=1e-7,
            max_iterations=30,
        )
        print(
            f"SCF {'converged' if scf.converged else 'NOT converged'} in "
            f"{scf.n_iterations} iterations"
        )
        for index in range(scf.n_iterations):
            change = scf.density_changes[index]
            change_text = "---" if np.isinf(change) else f"{change:.3e}"
            print(
                f"  iter {index:2d}: max|dD| = {change_text:>9s}   "
                f"mu = {scf.mus[index]:+.6f}   "
                f"E_band = {scf.band_energies[index]:+.6f}"
            )
        stats = scf.trajectory.stats
        print(
            f"\nsession reuse across the loop: {stats.plans_built} plan "
            f"build(s), {stats.executors_created} executor(s) for "
            f"{stats.n_steps} iterations"
        )


if __name__ == "__main__":
    main()
