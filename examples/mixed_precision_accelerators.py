#!/usr/bin/env python
"""Low/mixed-precision sign iterations and accelerator throughput (Sec. VI).

Because the submatrix method turns the sparse sign-function evaluation into
dense matrix algebra on local submatrices, it can exploit GPU tensor cores
and FPGAs, and it tolerates reduced precision.  This example reproduces both
halves of the paper's hardware-acceleration study:

* the *numerics*: the third-order Padé sign iteration (Eq. 19) is run on the
  combined submatrix of 32 water molecules in FP16, FP16', FP32 and FP64
  (emulated with NumPy dtypes), tracking the energy and the involutority
  violation per iteration (Figs. 12 and 13);
* the *throughput*: the analytic device model recomputes Table I (peak vs.
  practical GEMM vs. end-to-end sign-algorithm TFLOP/s) for the RTX 2080 Ti
  and the Stratix 10 FPGA.

Run with:  python examples/mixed_precision_accelerators.py
"""

import numpy as np

from repro.accel import (
    RTX_2080_TI,
    STRATIX_10,
    mixed_precision_sign_iteration,
    performance_table,
)
from repro.chem import HamiltonianModel, build_matrices, orthogonalized_ks, water_box
from repro.core.submatrix import extract_block_submatrix
from repro.dbcsr.convert import block_matrix_from_csr


def main() -> None:
    # combined submatrix of the first 32-molecule building block
    system = water_box((2, 1, 1))
    model = HamiltonianModel()
    pair = build_matrices(system, model=model)
    mu = model.homo_lumo_gap_center()
    k_ortho, _ = orthogonalized_ks(pair.K, pair.S, eps_filter=1e-5)
    blocked = block_matrix_from_csr(k_ortho, pair.blocks.block_sizes)
    submatrix = extract_block_submatrix(blocked, list(range(32))).data
    print(f"combined submatrix of 32 H2O molecules: dimension {submatrix.shape[0]}\n")

    # --- numerics: Figs. 12/13 ------------------------------------------ #
    histories = {
        mode: mixed_precision_sign_iteration(submatrix, mode, mu=mu, n_iterations=12)
        for mode in ("FP16", "FP16'", "FP32", "FP64")
    }
    reference = histories["FP64"].energies[-1]
    print("energy difference to converged FP64 (meV per molecule-atom) and "
          "involutority ||X^2 - I||_F:")
    header = f"{'iter':>4s}"
    for mode in histories:
        header += f"  {mode + ' dE':>12s} {mode + ' inv':>10s}"
    print(header)
    for k in range(12):
        line = f"{k + 1:>4d}"
        for mode, history in histories.items():
            energy_difference = (history.energies[k] - reference) / 96 * 1000
            line += f"  {energy_difference:>12.4f} {history.involutority[k]:>10.2e}"
        print(line)

    floors = {mode: min(h.involutority) for mode, h in histories.items()}
    print("\ninvolutority noise floors:", {m: f"{v:.1e}" for m, v in floors.items()})

    # --- throughput: Table I -------------------------------------------- #
    print("\nTable I (modelled end-to-end sign-algorithm throughput, n = 3972):")
    print(
        f"{'device':<38s} {'prec':>6s} {'peak':>8s} {'GEMM':>8s} "
        f"{'sign':>8s} {'GF/(W s)':>9s}"
    )
    for device in (RTX_2080_TI, STRATIX_10):
        for row in performance_table(device, matrix_dimension=3972):
            print(
                f"{row.device:<38s} {row.precision:>6s} {row.peak_tflops:>8.1f} "
                f"{row.gemm_tflops:>8.1f} {row.overall_tflops:>8.1f} "
                f"{row.gflops_per_watt_second:>9.1f}"
            )


if __name__ == "__main__":
    main()
