#!/usr/bin/env python
"""Tour of the unified session API: config → context → apply/density → distributed.

The submatrix method pays off in repeated-evaluation workloads — μ-bisection
over the chemical potential, SCF/MD trajectories, rank-count sweeps — and the
session API is how those workloads share their expensive state.  This tour
walks through

1. **one config** — an :class:`~repro.api.config.EngineConfig` collecting
   engine, backend, workers, bucket padding, balancing, ranks and filtering
   in one validated object,
2. **one kernel registry** — matrix functions resolved by name everywhere
   (``"eigen"``, ``"newton_schulz"``, …, plus user-registered kernels),
3. **one session** — a :class:`~repro.api.context.SubmatrixContext` owning
   the plan cache and the persistent worker pool: repeated ``apply`` calls
   build one plan and one pool,
4. the DFT driver — ``context.density`` in both ensembles, including the
   rank-sharded canonical μ-bisection,
5. a distributed run — ``context.distributed(ranks).run(...)`` with its
   per-rank traffic report.

Run with:  python examples/api_tour.py
"""

import numpy as np

import repro
from repro.api import EngineConfig, SubmatrixContext, available_kernels, get_kernel
from repro.chem import build_matrices, orthogonalized_ks, water_box
from repro.dbcsr.convert import block_matrix_from_csr, block_matrix_to_dense

EPS_FILTER = 1e-5


def main() -> None:
    print(f"repro {repro.__version__} — session API tour\n")

    # ------------------------------------------------------------------ #
    # 1. one config
    # ------------------------------------------------------------------ #
    config = EngineConfig(
        engine="batched",       # plan extraction + bucketed 3-D stacks
        backend="serial",       # deterministic; "thread" for real parallelism
        bucket_pad=None,        # exact-dimension buckets (bitwise-safe)
        balance="chunks",       # the paper's greedy consecutive chunks
        eps_filter=EPS_FILTER,
    )
    print(f"config: {config}\n")

    # ------------------------------------------------------------------ #
    # 2. one kernel registry
    # ------------------------------------------------------------------ #
    print("registered kernels:")
    for name in available_kernels():
        kernel = get_kernel(name)
        print(f"  {name:<15s} {kernel.description}")
    try:
        get_kernel("eigne")
    except repro.UnknownKernelError as error:
        print(f"  (typos are caught: {error})")
    print()

    # ------------------------------------------------------------------ #
    # 3. one session: plan cache + persistent pool across repeated applies
    # ------------------------------------------------------------------ #
    system = water_box(1)
    pair = build_matrices(system)
    k_ortho, _ = orthogonalized_ks(pair.K, pair.S, eps_filter=EPS_FILTER)
    blocked = block_matrix_from_csr(k_ortho, pair.blocks.block_sizes, threshold=0.0)

    context = SubmatrixContext(config)
    for mu in (-0.3, -0.2, -0.1, 0.0):
        result = context.apply(blocked, "eigen", mu=mu)
    stats = context.stats()
    print(
        f"4 sign evaluations on {system.n_molecules} molecules "
        f"({result.n_submatrices} submatrices, max dim {result.max_dimension}):"
    )
    print(
        f"  plan cache: {stats['plan_cache']['misses']} build(s), "
        f"{stats['plan_cache']['hits']} hit(s) — one plan serves every call\n"
    )

    # ------------------------------------------------------------------ #
    # 4. the DFT driver: both ensembles, sharded canonical search
    # ------------------------------------------------------------------ #
    n_electrons = 8.0 * system.n_molecules
    canonical = context.density(
        pair.K, pair.S, pair.blocks, n_electrons=n_electrons
    )
    print(
        f"canonical ensemble: mu = {canonical.mu:+.6f} Ha after "
        f"{canonical.mu_iterations} bisection iteration(s), "
        f"N = {canonical.n_electrons:.6f}"
    )
    sharded = context.density(
        pair.K, pair.S, pair.blocks, n_electrons=n_electrons, ranks=4
    )
    identical = canonical.mu == sharded.mu and np.array_equal(
        canonical.density_ao, sharded.density_ao
    )
    print(
        f"rank-sharded (4 ranks) canonical search: "
        f"{'bitwise identical' if identical else 'MISMATCH'}\n"
    )

    # ------------------------------------------------------------------ #
    # 5. a distributed run with its traffic report
    # ------------------------------------------------------------------ #
    run = context.distributed(8).run(blocked, "eigen", mu=0.0)
    reference = context.apply(blocked, "eigen", mu=0.0)
    difference = np.max(
        np.abs(
            block_matrix_to_dense(run.result)
            - block_matrix_to_dense(reference.result)
        )
    )
    print(f"distributed run on {run.n_ranks} ranks (bitwise diff {difference:.1e}):")
    print("  rank  submatrices  stacks  segment fetch [kB]  write-back [kB]")
    for report in run.per_rank:
        print(
            f"  {report.rank:>4d} {report.n_submatrices:>12d} "
            f"{report.n_stacks:>7d} {report.segment_fetch_bytes / 1e3:>18.1f} "
            f"{report.writeback_bytes / 1e3:>16.1f}"
        )
    print(
        f"  total packed-segment fetch {run.total_segment_fetch_bytes / 1e6:.2f} MB "
        f"(whole blocks would be {run.total_block_fetch_bytes / 1e6:.2f} MB)"
    )


if __name__ == "__main__":
    main()
