#!/usr/bin/env python
"""Density-as-a-service: two tenants sharing one multi-tenant server.

A single in-process :class:`repro.DensityService` serves density-matrix
requests from two concurrent tenants — an MD driver running canonical
(fixed electron count) solves and a screening workload running
grand-canonical (fixed μ) solves — over a *shared* library of molecular
configurations:

* extraction plans are built once per distinct sparsity pattern and reused
  across tenants through the shared plan cache;
* the micro-batcher coalesces concurrently queued requests into merged
  eigendecomposition stacks and deduplicates the μ-independent work of
  requests carrying bytewise-identical matrices;
* admission control caps per-tenant in-flight work, and per-tenant metrics
  (latency percentiles, cache traffic, batching counters) are readable at
  any time while the service keeps serving.

Every served result is bitwise identical to a direct
``SubmatrixContext.density`` call with the same arguments.

Run with:  python examples/service_demo.py
"""

import threading

from repro import DensityService, EngineConfig
from repro.chem import HamiltonianModel, build_matrices, water_box

N_PATTERNS = 3
REQUESTS_PER_TENANT = 6
ELECTRONS_PER_MOLECULE = 8


def build_library():
    """Shared molecule library: distinct jittered 32-molecule water boxes."""
    model = HamiltonianModel()
    pairs = [
        build_matrices(water_box(1, seed=2020 + index), model=model)
        for index in range(N_PATTERNS)
    ]
    return pairs, model.homo_lumo_gap_center()


def tenant_load(service, tenant, pairs, ensemble_for):
    """Submit every request up front, then wait — the service coalesces."""
    futures = [
        service.submit(
            pair.K,
            pair.S,
            pair.blocks,
            tenant=tenant,
            **ensemble_for(index),
        )
        for index, pair in enumerate(
            pairs[i % len(pairs)] for i in range(REQUESTS_PER_TENANT)
        )
    ]
    return [future.result(600) for future in futures]


def main() -> None:
    pairs, gap_mu = build_library()
    n_molecules = 32
    print(
        f"shared library: {N_PATTERNS} configurations of {n_molecules} H2O "
        f"({pairs[0].n_basis} basis functions each)\n"
    )

    config = EngineConfig(engine="batched", backend="thread")
    with DensityService(config=config, max_batch=8, batch_wait=0.02) as service:
        results = {}

        def run(tenant, ensemble_for):
            results[tenant] = tenant_load(service, tenant, pairs, ensemble_for)

        threads = [
            threading.Thread(
                target=run,
                args=(
                    "md-driver",
                    lambda i: {"n_electrons": float(ELECTRONS_PER_MOLECULE * n_molecules)},
                ),
            ),
            threading.Thread(
                target=run, args=("screening", lambda i: {"mu": gap_mu})
            ),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = service.stats()

    for tenant, tenant_results in sorted(results.items()):
        mus = ", ".join(f"{r.mu:+.4f}" for r in tenant_results[: len(pairs)])
        print(f"{tenant}: {len(tenant_results)} densities served, mu = [{mus}, ...]")

    metrics = stats["metrics"]
    print("\nper-tenant service metrics:")
    for tenant, state in sorted(metrics["tenants"].items()):
        print(
            f"  {tenant:<10s}  completed = {state['completed']:2d}   "
            f"p50 = {1000 * state['p50_latency']:7.1f} ms   "
            f"p99 = {1000 * state['p99_latency']:7.1f} ms   "
            f"cache hit rate = {state['cache_hit_rate']:.2f}"
        )

    total = metrics["total"]
    print(
        f"\nshared plan cache: {stats['plan_cache']['builds']} plans built for "
        f"{int(total['completed'])} requests "
        f"(hit rate {stats['plan_cache_hit_rate']:.2f}, "
        f"{stats['plan_cache_bytes'] / 1e6:.1f} MB held)"
    )
    print(
        f"micro-batching: {int(total['batched'])} requests served in merged "
        f"groups, {int(total['shared'])} deduplicated against an identical "
        "in-flight peer"
    )
    print(
        "\nBoth tenants drew on the same plans and the same in-flight "
        "eigendecompositions; every result is bitwise identical to a direct "
        "single-session call."
    )


if __name__ == "__main__":
    main()
