#!/usr/bin/env python
"""Combining block columns and balancing the load across ranks.

Sec. IV-C of the paper describes how several block columns can be combined
into a single submatrix to reduce the total O(Σ n³) work, using either
k-means clustering of the real-space molecule positions or graph partitioning
of the block-sparsity pattern.  Sec. IV-E describes the greedy FLOP-based
assignment of consecutive submatrix chunks to MPI ranks.

This example reproduces both analyses on an 864-molecule water box
(pattern level, no dense numerics needed):

* estimated speedup S (Eq. 15) for several cluster counts and both
  heuristics — the data behind Fig. 5,
* load imbalance of the greedy assignment vs. an equal-count assignment.

Run with:  python examples/clustering_and_load_balance.py
"""

import numpy as np

from repro.chem import build_block_pattern, water_box
from repro.core import (
    assign_consecutive_chunks,
    estimated_speedup,
    group_columns_graph,
    group_columns_kmeans,
    load_imbalance,
    single_column_groups,
    submatrix_flop_costs,
)
from repro.dbcsr import CooBlockList


def main() -> None:
    system = water_box(3)  # 864 molecules, as in Fig. 2 of the paper
    pattern, blocks = build_block_pattern(system, eps_filter=1e-7)
    coo = CooBlockList.from_pattern(pattern)
    sizes = blocks.block_sizes
    centers = system.molecule_centers()
    n = system.n_molecules
    print(
        f"system: {n} molecules; block pattern has {pattern.nnz} non-zero blocks "
        f"({pattern.nnz / n**2:.1%} occupation)\n"
    )

    # ------------------------------------------------------------------ #
    # column combination heuristics (Fig. 5)
    # ------------------------------------------------------------------ #
    single = single_column_groups(n)
    single_dims = single.submatrix_dimensions(coo, sizes)
    print("estimated speedup S (Eq. 15) when combining block columns:")
    print(f"{'N_S':>6s}  {'S (k-means, real space)':>25s}  {'S (graph partition)':>20s}")
    for n_submatrices in (n // 32, n // 16, n // 8, n // 4, n // 2):
        kmeans_grouping = group_columns_kmeans(centers, n_submatrices, seed=0)
        graph_grouping = group_columns_graph(pattern, n_submatrices)
        s_kmeans = estimated_speedup(coo, sizes, kmeans_grouping, single_dims)
        s_graph = estimated_speedup(coo, sizes, graph_grouping, single_dims)
        print(f"{n_submatrices:>6d}  {s_kmeans:>25.3f}  {s_graph:>20.3f}")

    # ------------------------------------------------------------------ #
    # load balancing (Sec. IV-E)
    # ------------------------------------------------------------------ #
    print("\nload balancing of single-column submatrices over 80 ranks:")
    costs = submatrix_flop_costs(single_dims)
    greedy = assign_consecutive_chunks(costs, 80)
    per_rank = max(1, n // 80)
    equal_counts = [
        (start, min(start + per_rank, n)) for start in range(0, n, per_rank)
    ][:80]
    equal_counts[-1] = (equal_counts[-1][0], n)
    print(f"  greedy FLOP-based chunks : imbalance {load_imbalance(costs, greedy):.3f}")
    print(
        f"  equal submatrix counts   : imbalance "
        f"{load_imbalance(costs, equal_counts):.3f}"
    )
    chunk_sizes = [stop - start for start, stop in greedy]
    print(
        f"  greedy chunk sizes: min {np.min(chunk_sizes)}, "
        f"median {int(np.median(chunk_sizes))}, max {np.max(chunk_sizes)}"
    )


if __name__ == "__main__":
    main()
