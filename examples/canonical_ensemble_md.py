#!/usr/bin/env python
"""Canonical ensembles and finite temperature with the submatrix method.

The submatrix method is intrinsically grand-canonical (fixed chemical
potential μ).  Sec. IV-G of the paper shows how solving the submatrices by
eigendecomposition makes canonical calculations cheap: the electron count can
be evaluated for any μ from the cached eigendecompositions (Algorithm 1), so
a bisection on μ costs almost nothing compared to recomputing the sign
function at every step.

This example mimics the usage pattern of an ab-initio MD driver:

* solve the neutral system canonically (fixed electron count),
* remove a few electrons (a charged system) and watch μ drop into the
  occupied band,
* repeat the neutral solve at a finite electronic temperature, where the
  Heaviside occupations are replaced by the Fermi function.

Run with:  python examples/canonical_ensemble_md.py
"""

from repro.chem import HamiltonianModel, build_matrices, water_box
from repro.api import EngineConfig
from repro.core.sign_dft import SubmatrixDFTSolver


def describe(tag: str, result) -> None:
    print(
        f"{tag:<34s}  mu = {result.mu:+8.4f} eV   "
        f"N_elec = {result.n_electrons:9.4f}   "
        f"E_band = {result.band_energy:12.4f} eV   "
        f"(mu bisection iterations: {result.mu_iterations})"
    )


def main() -> None:
    system = water_box((2, 1, 1))
    model = HamiltonianModel()
    pair = build_matrices(system, model=model)
    electrons_neutral = 8 * system.n_molecules
    print(
        f"system: {system.n_molecules} H2O, {system.n_atoms} atoms, "
        f"{pair.n_basis} basis functions, {electrons_neutral} valence electrons\n"
    )

    solver = SubmatrixDFTSolver(
        eps_filter=1e-6, config=EngineConfig(engine="batched", backend="thread")
    )

    # canonical solve of the neutral system: mu is found by Algorithm 1
    neutral = solver.compute_density(
        pair.K, pair.S, pair.blocks, n_electrons=electrons_neutral
    )
    describe("neutral, T = 0", neutral)

    # charged system: remove 8 electrons -> mu moves towards the occupied band
    cation = solver.compute_density(
        pair.K, pair.S, pair.blocks, n_electrons=electrons_neutral - 8
    )
    describe("8 electrons removed, T = 0", cation)

    # grand-canonical run at the mu found above reproduces the same state
    grand = solver.compute_density(pair.K, pair.S, pair.blocks, mu=neutral.mu)
    describe("grand canonical at canonical mu", grand)

    # finite electronic temperature: Fermi occupations instead of Heaviside
    hot_solver = SubmatrixDFTSolver(
        eps_filter=1e-6,
        temperature=5000.0,
        config=EngineConfig(engine="batched", backend="thread"),
    )
    hot = hot_solver.compute_density(
        pair.K, pair.S, pair.blocks, n_electrons=electrons_neutral
    )
    describe("neutral, T = 5000 K", hot)

    print(
        "\nThe canonical solves adjust mu without recomputing any "
        "eigendecomposition (Algorithm 1 of the paper)."
    )


if __name__ == "__main__":
    main()
