#!/usr/bin/env python
"""Mixed-precision density: backends, the precision policy, and refinement.

The paper's GPU implementation evaluates submatrix sign functions in reduced
precision (FP16/FP16'/FP32 tensor-core GEMMs) and still reaches FP64-quality
densities because a cheap FP64 Newton–Schulz refinement removes the noise
floor of the reduced iteration.  This example walks the reproduction of that
pipeline:

1. **array backends** — the kernels run through an
   :class:`~repro.backend.base.ArrayBackend`; ``numpy`` is the bitwise FP64
   default and ``emulated`` rounds every GEMM through a reduced
   storage/accumulation mode,
2. **the policy** — :class:`~repro.api.config.PrecisionPolicy` on
   :class:`~repro.api.config.EngineConfig` selects a mode per submatrix
   stack (``fp32`` / ``fp16`` fixed, or ``auto`` from the device performance
   model plus a condition-number error bound),
3. **refinement** — reduced sign estimates are polished by an FP64
   Newton–Schulz continuation, and the result carries the accounting:
   how many stacks ran reduced, how many refinement passes, and the
   a-priori error bound,
4. **fp64 stays fp64** — the default policy is bitwise identical to the
   pre-policy engine.

Run with:  python examples/mixed_precision.py
"""

import numpy as np

import repro
from repro.api import EngineConfig, PrecisionPolicy, SubmatrixContext
from repro.backend import available_backends, get_backend
from repro.chem import SZV, HamiltonianModel, build_matrices, water_box


def main() -> None:
    print(f"repro {repro.__version__} — mixed-precision execution\n")

    model = HamiltonianModel(basis=SZV)
    system = water_box(1)
    pair = build_matrices(system, model=model)
    mu = model.homo_lumo_gap_center()
    print(
        f"system: {system.n_molecules} water molecules, "
        f"{pair.K.shape[0]} basis functions, mu = {mu:.2f}\n"
    )

    # ------------------------------------------------------------------ #
    # 1. array backends
    # ------------------------------------------------------------------ #
    print(f"registered backends: {', '.join(available_backends())}")
    for spec in [("numpy", None), ("emulated", "FP32"), ("emulated", "FP16'")]:
        backend = get_backend(spec[0], precision=spec[1])
        mode = backend.precision.name if backend.precision else "FP64 (native)"
        print(f"  {backend.name:<10s} {mode:<15s} dtype {np.dtype(backend.dtype)}")
    print()

    # ------------------------------------------------------------------ #
    # 2 + 3. the policy, end to end, with refinement accounting
    # ------------------------------------------------------------------ #
    policies = {
        "fp64": PrecisionPolicy(),  # the default: everything double
        "fp32": PrecisionPolicy(mode="fp32"),
        "fp16": PrecisionPolicy(mode="fp16"),  # FP16' storage/accumulate split
        "auto": PrecisionPolicy(mode="auto", error_tolerance=1e-3),
    }
    reference = None
    print("mode   stacks_reduced  refinements  error bound  density max error")
    for name, policy in policies.items():
        config = EngineConfig(engine="batched", precision=policy)
        with SubmatrixContext(config) as context:
            result = context.density(
                pair.K, pair.S, pair.blocks, mu=mu, solver="newton_schulz"
            )
        if reference is None:
            reference = result
        error = np.abs(result.density_ao - reference.density_ao).max()
        bound = (
            f"{result.precision_error_bound:.2e}"
            if result.precision_error_bound is not None
            else "-"
        )
        print(
            f"{name:<6s} {result.stacks_reduced:>14d}  "
            f"{result.refinement_passes:>11d}  {bound:>11s}  {error:.2e}"
        )
    print()

    # ------------------------------------------------------------------ #
    # 4. fp64 stays fp64
    # ------------------------------------------------------------------ #
    with SubmatrixContext(EngineConfig(engine="batched")) as context:
        baseline = context.density(
            pair.K, pair.S, pair.blocks, mu=mu, solver="newton_schulz"
        )
    identical = np.array_equal(baseline.density_ao, reference.density_ao)
    print(f"fp64 policy bitwise identical to the pre-policy engine: {identical}")
    assert identical


if __name__ == "__main__":
    main()
