#!/usr/bin/env python
"""Quickstart: density matrix of a liquid-water box via the submatrix method.

This example walks through the full pipeline of the paper on a small system:

1. build a periodic liquid-water benchmark system (32 molecules),
2. construct the model Kohn–Sham matrix K and overlap matrix S (SZV basis),
3. compute the density matrix with the submatrix method — the orthogonalized
   Kohn–Sham matrix is filtered at ``eps_filter``, one dense submatrix is
   built per molecule block column, the matrix sign function is evaluated by
   eigendecomposition on each submatrix, and the relevant columns are
   scattered back (Eq. 16/17 of the paper),
4. compare energy and electron count against the cubic-scaling dense
   reference.

Run with:  python examples/quickstart.py
"""

from repro.chem import (
    HamiltonianModel,
    build_matrices,
    reference_density_matrix,
    water_box,
)
from repro.api import EngineConfig
from repro.core.sign_dft import SubmatrixDFTSolver


def main() -> None:
    # 1. benchmark system: one 32-molecule building block (96 atoms)
    system = water_box(1)
    print(f"system: {system.n_molecules} H2O molecules, {system.n_atoms} atoms")

    # 2. model Kohn-Sham and overlap matrices in the SZV-like basis
    model = HamiltonianModel()
    pair = build_matrices(system, model=model)
    print(
        f"matrices: dimension {pair.n_basis}, "
        f"K has {pair.K.nnz} stored elements "
        f"({pair.K.nnz / pair.n_basis**2:.1%} of dense)"
    )

    # 3. submatrix-method density matrix (grand canonical: fixed mu in the gap)
    mu = model.homo_lumo_gap_center()
    solver = SubmatrixDFTSolver(
        eps_filter=1e-6, config=EngineConfig(engine="batched", backend="thread")
    )
    result = solver.compute_density(pair.K, pair.S, pair.blocks, mu=mu)
    print(
        f"submatrix method: {result.n_submatrices} submatrices, "
        f"largest dimension {result.max_submatrix_dimension}, "
        f"wall time {result.wall_time:.2f} s"
    )
    print(
        f"  band-structure energy = {result.band_energy:.6f} eV, "
        f"electrons = {result.n_electrons:.3f}"
    )

    # 4. cubic-scaling dense reference for comparison
    reference = reference_density_matrix(pair.K, pair.S, mu=mu)
    error_mev_per_atom = (
        abs(result.band_energy - reference.band_energy) / system.n_atoms * 1000.0
    )
    print(
        f"dense reference:  band-structure energy = {reference.band_energy:.6f} eV, "
        f"electrons = {reference.n_electrons:.3f}"
    )
    print(f"energy error of the submatrix method: {error_mev_per_atom:.4f} meV/atom")


if __name__ == "__main__":
    main()
