#!/usr/bin/env python
"""MD trajectory walkthrough: one session, many geometry steps.

The submatrix method's headline workload (Sec. VII of the paper) is the
repeated density-matrix build along an SCF/MD trajectory: every step moves
the atoms a little, so the Kohn–Sham matrix *values* change while the
block-sparsity pattern of the filtered orthogonalized matrix stays fixed
for many consecutive steps.  ``SubmatrixContext.trajectory(...)`` drives
exactly this loop through one session:

* **value-only steps** are detected via the plan cache's pattern content
  hash and reuse the cached extraction plan, the rank-sharded pipeline
  (shard layouts, bucketed stacks, transfer plan) and the persistent
  worker pool — planning happens once, not once per step;
* **pattern changes** (an atom pair drifting across the filter threshold)
  are detected by the same hash and replanned exactly once;
* every step's result is bitwise identical to a fresh single-shot
  ``context.density`` call — the driver removes redundant work, never
  accuracy;
* a ``TrajectoryStats`` record reports plans built vs cache hits, per-step
  wall times and (for sharded runs) the initialization-exchange fetch
  volumes;
* a **drifting pattern** (blocks appearing/disappearing every step) can be
  handled incrementally: ``replan="patch"`` diffs consecutive patterns and
  rebuilds only the invalidated column groups (bitwise identical to full
  replans), and ``warm_start_mu=True`` seeds each canonical step's
  μ-bisection from the previous step's μ;
* long trajectories survive failures: ``checkpoint=path`` persists every
  completed step so a killed run resumes at the failed step (bitwise
  identical to the uninterrupted run, including warm-started μ state), and
  an active ``ResiliencePolicy`` retries crashed ranks — re-executing the
  lost shard work bitwise — with the recovery counters surfaced on
  ``TrajectoryStats``.

Run with:  python examples/md_trajectory.py
"""

import shutil
import tempfile

import numpy as np
import scipy.sparse as sp

from repro.api import EngineConfig, ResiliencePolicy, SubmatrixContext
from repro.parallel.faults import FaultInjector, FaultPlan
from repro.chem import HamiltonianModel, build_matrices, water_box
from repro.chem.orthogonalize import orthogonalized_ks
from repro.dbcsr.convert import block_matrix_from_csr
from repro.dbcsr.coo import CooBlockList

EPS_FILTER = 1e-5
N_STEPS = 6


def simulate_md_steps(pair, n_steps, amplitude=2e-4, seed=11):
    """Synthetic MD: per-step symmetric value perturbations of K, fixed S.

    A real MD engine would rebuild K and S from the moved atoms; for the
    walkthrough we perturb the Kohn–Sham values directly, which reproduces
    the essential property — changed values, unchanged sparsity pattern.
    """
    generator = np.random.default_rng(seed)
    steps = []
    for _ in range(n_steps):
        jitter = 1.0 + amplitude * generator.standard_normal()
        steps.append((pair.K * jitter, pair.S))
    return steps


def drifting_pattern_steps(pair, blocks, eps_filter, n_steps, amplitude=1.0, seed=23):
    """Synthetic drift: every step bumps one block pair across the filter.

    An MD trajectory drifts the sparsity pattern when an atom pair crosses
    the filter threshold; here we emulate that by adding one above-threshold
    coupling between a different distant molecule pair each step, so every
    consecutive pattern differs by a few blocks.
    """
    k_ortho, _ = orthogonalized_ks(pair.K, pair.S, eps_filter=eps_filter)
    base_pattern = CooBlockList.from_block_matrix(
        block_matrix_from_csr(k_ortho, blocks.block_sizes, threshold=0.0)
    )
    present = set(zip(base_pattern.rows.tolist(), base_pattern.cols.tolist()))
    absent = [
        (i, j)
        for i in range(blocks.n_blocks)
        for j in range(i + 1, blocks.n_blocks)
        if (i, j) not in present
    ]
    generator = np.random.default_rng(seed)
    n = pair.K.shape[0]
    starts = blocks.block_starts
    steps = []
    for _ in range(n_steps):
        bi, bj = absent[int(generator.integers(0, len(absent)))]
        bump = sp.lil_matrix((n, n))
        i, j = int(starts[bi]), int(starts[bj])
        bump[i, j] = bump[j, i] = amplitude
        steps.append((pair.K + bump.tocsr(), pair.S))
    return steps


def main() -> None:
    system = water_box(1)
    pair = build_matrices(system, model=HamiltonianModel())
    n_electrons = 8.0 * system.n_molecules
    steps = simulate_md_steps(pair, N_STEPS)

    # ------------------------------------------------------------------ #
    # 1. the trajectory loop: one plan, one pool, N steps
    # ------------------------------------------------------------------ #
    config = EngineConfig(engine="batched", eps_filter=EPS_FILTER)
    with SubmatrixContext(config) as context:
        trajectory = context.trajectory(steps, pair.blocks, n_electrons=n_electrons)
        stats = trajectory.stats
        print(
            f"{stats.n_steps} canonical steps on {system.n_molecules} molecules: "
            f"{stats.plans_built} plan build(s), {stats.plan_cache_hits} cache "
            f"hit(s), {stats.pattern_changes} pattern change(s)"
        )
        print(
            f"  cold first step {stats.steps[0].wall_time:.3f} s, warm steps "
            f"{np.median([r.wall_time for r in stats.steps[1:]]):.3f} s (median)"
        )
        print(
            "  mu per step:",
            ", ".join(f"{mu:.6f}" for mu in trajectory.mus),
        )

        # every step is bitwise identical to a fresh single-shot call
        k3, s3 = steps[3]
        fresh = SubmatrixContext(config).density(
            k3, s3, pair.blocks, n_electrons=n_electrons
        )
        identical = np.array_equal(trajectory[3].density_ao, fresh.density_ao)
        print(f"  step 3 bitwise identical to a fresh context: {identical}\n")

        # -------------------------------------------------------------- #
        # 2. rank-sharded steps reuse one pipeline (and report traffic)
        # -------------------------------------------------------------- #
        sharded = context.trajectory(
            steps, pair.blocks, n_electrons=n_electrons, ranks=2
        )
        record = sharded.stats.steps[0]
        print(
            f"sharded trajectory (2 ranks): {sharded.stats.pipelines_built} "
            f"pipeline build(s) for {sharded.stats.n_steps} steps, "
            f"{record.segment_fetch_bytes:.0f} B packed segments fetched per "
            f"step ({record.block_fetch_bytes:.0f} B as whole blocks)"
        )
        sharded_identical = all(
            np.array_equal(sharded[i].density_ao, trajectory[i].density_ao)
            for i in range(len(steps))
        )
        print(f"  sharded steps bitwise identical: {sharded_identical}\n")

        # -------------------------------------------------------------- #
        # 3. iterative solvers run sharded too (grand-canonical)
        # -------------------------------------------------------------- #
        gap_mu = HamiltonianModel().homo_lumo_gap_center()
        newton = context.trajectory(
            steps, pair.blocks, mu=gap_mu, solver="newton_schulz", ranks=2
        )
        print(
            f"grand-canonical Newton-Schulz, 2 ranks: {newton.stats.n_steps} "
            f"steps, {newton.stats.plans_built} plan build(s), band energies "
            f"{newton.band_energies.min():.4f} .. {newton.band_energies.max():.4f}"
        )

    # ------------------------------------------------------------------ #
    # 4. a pattern change invalidates the reuse exactly once
    # ------------------------------------------------------------------ #
    # at a looser filter the pattern is genuinely sparse, so a rescaled
    # matrix retains different blocks and the content hash flags the change
    sparse_config = EngineConfig(engine="batched", eps_filter=1e-2)
    changed_steps = steps[:3] + [(pair.K * 3.0, pair.S)] * 2
    with SubmatrixContext(sparse_config) as context:
        invalidated = context.trajectory(
            changed_steps, pair.blocks, n_electrons=n_electrons
        )
        flags = ", ".join(
            f"step {r.step}: {'replan' if r.pattern_changed else 'reuse'}"
            for r in invalidated.stats.steps
        )
        print(
            f"\npattern-change detection at eps_filter=1e-2 "
            f"({invalidated.stats.plans_built} plans, "
            f"{invalidated.stats.pattern_changes} change(s)): {flags}"
        )

    # ------------------------------------------------------------------ #
    # 5. drifting patterns: incremental replans + warm-started μ
    # ------------------------------------------------------------------ #
    # every step here changes the pattern by a few blocks — the regime the
    # incremental replan subsystem targets: replan="patch" rebuilds only the
    # invalidated column groups and stays bitwise identical to full replans
    drifting = drifting_pattern_steps(pair, pair.blocks, 1e-2, N_STEPS)
    with SubmatrixContext(sparse_config) as context:
        patched = context.trajectory(
            drifting, pair.blocks, n_electrons=n_electrons, replan="patch"
        )
    with SubmatrixContext(sparse_config) as context:
        full = context.trajectory(
            drifting, pair.blocks, n_electrons=n_electrons, replan="full"
        )
    patch_identical = all(
        np.array_equal(patched[i].density_ao, full[i].density_ao)
        for i in range(len(drifting))
    )
    stats = patched.stats
    print(
        f"\ndrifting pattern, replan='patch': {stats.pattern_changes} pattern "
        f"change(s), {stats.plans_patched}/{stats.plans_built} plans served by "
        f"patching ({stats.groups_rebuilt} of "
        f"{stats.n_steps * patched[0].n_submatrices} group plans rebuilt)"
    )
    print(f"  bitwise identical to replan='full': {patch_identical}")

    # warm-started μ-bisection: opt-in, trades bitwise μ identity for fewer
    # iterations (meaningful at finite temperature, where the electron count
    # is strictly monotone in μ)
    warm_config = EngineConfig(engine="batched", eps_filter=1e-2, temperature=30000.0)
    with SubmatrixContext(warm_config) as context:
        cold = context.trajectory(
            drifting, pair.blocks, n_electrons=n_electrons, mu_tolerance=1e-6
        )
        warm = context.trajectory(
            drifting,
            pair.blocks,
            n_electrons=n_electrons,
            mu_tolerance=1e-6,
            replan="patch",
            warm_start_mu=True,
        )
    print(
        f"warm_start_mu=True at kT≈2.6 eV: "
        f"{sum(r.mu_iterations for r in warm.stats.steps)} bisection "
        f"iterations vs {sum(r.mu_iterations for r in cold.stats.steps)} "
        f"cold (max |Δμ| {np.max(np.abs(warm.mus - cold.mus)):.2e})"
    )

    # ------------------------------------------------------------------ #
    # 6. resilience: checkpoint/resume and rank-crash recovery
    # ------------------------------------------------------------------ #
    # a killed trajectory resumes from its checkpoint: completed steps are
    # loaded (bitwise, including the warm-start μ state), only the failed
    # step onward recomputes
    checkpoint_dir = tempfile.mkdtemp(prefix="md_trajectory_ckpt_")

    class SimulatedCrash(Exception):
        pass

    def crashing_steps(index):
        if index == 4:
            raise SimulatedCrash()  # the MD engine dies mid-trajectory
        return steps[index] if index < len(steps) else None

    try:
        with SubmatrixContext(config) as context:
            try:
                context.trajectory(
                    crashing_steps,
                    pair.blocks,
                    n_electrons=n_electrons,
                    checkpoint=checkpoint_dir,
                )
            except SimulatedCrash:
                pass
        with SubmatrixContext(config) as context:
            resumed = context.trajectory(
                steps,
                pair.blocks,
                n_electrons=n_electrons,
                checkpoint=checkpoint_dir,
            )
    finally:
        shutil.rmtree(checkpoint_dir, ignore_errors=True)
    resumed_identical = all(
        np.array_equal(resumed[i].density_ao, trajectory[i].density_ao)
        for i in range(len(steps))
    )
    print(
        f"\ncheckpoint/resume: killed at step 4, resumed with "
        f"{resumed.stats.steps_resumed} step(s) loaded from disk, "
        f"{resumed.stats.n_steps - resumed.stats.steps_resumed} recomputed; "
        f"bitwise identical to the uninterrupted run: {resumed_identical}"
    )

    # a deterministic fault injector crashes rank 1 once per step; the
    # resilience policy retries it, reassigning the lost shard work — the
    # densities stay bitwise identical and the stats count the recoveries
    resilient_config = EngineConfig(
        engine="batched",
        eps_filter=EPS_FILTER,
        resilience=ResiliencePolicy(
            fault_injector=FaultInjector(
                FaultPlan.rank_crashes([1], seed=3, times=None, period=2)
            )
        ),
    )
    with SubmatrixContext(resilient_config) as context:
        survived = context.trajectory(
            steps, pair.blocks, n_electrons=n_electrons, ranks=2
        )
    survived_identical = all(
        np.array_equal(survived[i].density_ao, trajectory[i].density_ao)
        for i in range(len(steps))
    )
    print(
        f"injected rank crashes (2 ranks): {survived.stats.retries} rank "
        f"retrie(s), {survived.stats.reassigned_stacks} submatrix stack(s) "
        f"reassigned over {survived.stats.n_steps} steps; bitwise identical "
        f"to the fault-free run: {survived_identical}"
    )


if __name__ == "__main__":
    main()
