#!/usr/bin/env python
"""Distributed cost analysis: transfers, strong and weak scaling.

The scaling experiments of the paper (Figs. 8-10) depend on how work and
communication are distributed over MPI ranks.  This example uses the
reproduction's distributed cost model to

* plan the deduplicated block transfers of a submatrix-method run
  (Sec. IV-B) and report how much volume the deduplication saves,
* compare simulated strong scaling of the submatrix method (80 -> 320 ranks)
  at fixed system size,
* compare the weak-scaling behaviour of the submatrix method against the
  Newton-Schulz baseline when system size and rank count grow together.

Run with:  python examples/distributed_scaling.py
"""

from repro.analysis import parallel_efficiency
from repro.chem import build_block_pattern, water_box
from repro.core import (
    newton_schulz_cost,
    plan_transfers,
    single_column_groups,
    submatrix_method_cost,
    assign_consecutive_chunks,
    submatrix_flop_costs,
)
from repro.core.runner import estimate_newton_schulz_iterations
from repro.dbcsr import BlockDistribution, CooBlockList, ProcessGrid2D
from repro.parallel import MachineModel
from repro.parallel.topology import balanced_dims

EPS_FILTER = 1e-5


def transfer_planning(machine: MachineModel) -> None:
    system = water_box(3)
    pattern, blocks = build_block_pattern(system, eps_filter=EPS_FILTER)
    coo = CooBlockList.from_pattern(pattern)
    n_ranks = 80
    grid = ProcessGrid2D(n_ranks, balanced_dims(n_ranks))
    distribution = BlockDistribution(coo.n_block_rows, coo.n_block_cols, grid)
    grouping = single_column_groups(system.n_molecules)
    dims = grouping.submatrix_dimensions(coo, blocks.block_sizes)
    chunks = assign_consecutive_chunks(submatrix_flop_costs(dims), n_ranks)
    rank_of_group = [0] * grouping.n_submatrices
    for rank, (start, stop) in enumerate(chunks):
        for index in range(start, stop):
            rank_of_group[index] = rank
    plan = plan_transfers(coo, blocks.block_sizes, distribution, grouping, rank_of_group)
    print(f"transfer planning ({system.n_molecules} molecules, {n_ranks} ranks):")
    print(f"  deduplicated fetch volume : {plan.total_fetch_bytes / 1e6:10.1f} MB")
    print(
        f"  without deduplication     : "
        f"{plan.total_fetch_bytes_without_dedup / 1e6:10.1f} MB"
    )
    print(f"  savings                   : {plan.deduplication_savings:10.1%}")
    print(f"  write-back volume         : {plan.total_writeback_bytes / 1e6:10.1f} MB\n")


def strong_scaling(machine: MachineModel) -> None:
    system = water_box(3)
    pattern, blocks = build_block_pattern(system, eps_filter=EPS_FILTER)
    ranks = [80, 160, 240, 320]
    times = [
        submatrix_method_cost(pattern, blocks.block_sizes, r, machine).simulated.total
        for r in ranks
    ]
    efficiency = parallel_efficiency(times, ranks, mode="strong")
    print(f"strong scaling of the submatrix method ({system.n_atoms} atoms):")
    for r, t, e in zip(ranks, times, efficiency):
        print(f"  {r:>4d} cores: {t:8.3f} s   efficiency {e:5.1%}")
    print()


def weak_scaling(machine: MachineModel) -> None:
    scales = [1, 2, 4, 8]
    base_ranks = 40
    iterations = estimate_newton_schulz_iterations(EPS_FILTER)
    submatrix_times, newton_times, cores = [], [], []
    print("weak scaling (slab replicated along one dimension):")
    for scale in scales:
        system = water_box((3 * scale, 1, 1))
        pattern, blocks = build_block_pattern(system, eps_filter=EPS_FILTER)
        ranks = base_ranks * scale
        sm = submatrix_method_cost(pattern, blocks.block_sizes, ranks, machine)
        ns = newton_schulz_cost(
            pattern, blocks.block_sizes, ranks, machine, n_iterations=iterations
        )
        submatrix_times.append(sm.simulated.total)
        newton_times.append(ns.simulated.total)
        cores.append(ranks)
        print(
            f"  {system.n_atoms:>6d} atoms on {ranks:>4d} cores: "
            f"submatrix {sm.simulated.total:7.3f} s   "
            f"newton-schulz {ns.simulated.total:7.3f} s"
        )
    sm_eff = parallel_efficiency(submatrix_times, cores, mode="weak")
    ns_eff = parallel_efficiency(newton_times, cores, mode="weak")
    print(
        f"  weak-scaling efficiency at the largest scale: "
        f"submatrix {sm_eff[-1]:5.1%} vs. newton-schulz {ns_eff[-1]:5.1%}"
    )


def main() -> None:
    machine = MachineModel()
    print(f"machine model: {machine.name}\n")
    transfer_planning(machine)
    strong_scaling(machine)
    weak_scaling(machine)


if __name__ == "__main__":
    main()
