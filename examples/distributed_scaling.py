#!/usr/bin/env python
"""Distributed cost analysis: sharded transfers, strong and weak scaling.

The scaling experiments of the paper (Figs. 8-10) depend on how work and
communication are distributed over MPI ranks.  This example drives the
rank-sharded submatrix pipeline through the unified session API
(:class:`repro.api.context.SubmatrixContext`) to

* plan the deduplicated initialization exchange of a submatrix-method run
  (Sec. IV-B) and compare, per rank, shipping *packed value segments* into
  the rank-local buffer against whole-block transfers with and without
  deduplication,
* execute a distributed session on a small system and verify that the
  per-rank sharded evaluation reproduces the single-process engine,
* compare simulated strong scaling of the submatrix method (80 -> 320 ranks)
  at fixed system size,
* compare the weak-scaling behaviour of the submatrix method against the
  Newton-Schulz baseline when system size and rank count grow together,
* run the arrival-driven overlapped exchange and report, per rank count,
  how much of the modeled initialization exchange hides behind compute.

Run with:  python examples/distributed_scaling.py
"""

import numpy as np

from repro.analysis import parallel_efficiency
from repro.api import EngineConfig, SubmatrixContext
from repro.api.density import prepare_step
from repro.chem import build_block_pattern, orthogonalized_ks, water_box
from repro.chem.hamiltonian import build_matrices
from repro.core import newton_schulz_cost, submatrix_method_cost
from repro.core.runner import (
    DistributedSubmatrixPipeline,
    estimate_newton_schulz_iterations,
)
from repro.dbcsr import CooBlockList
from repro.dbcsr.convert import block_matrix_from_csr, block_matrix_to_dense
from repro.parallel import MachineModel

EPS_FILTER = 1e-5


def segment_transfer_planning() -> None:
    """Per-rank packed-segment traffic vs whole-block traffic (Sec. IV-B).

    Three ways to account the initialization exchange:

    * per-submatrix whole-block shipping (no deduplication) — the naive
      model;
    * the fast pattern-level whole-block estimate (``per_group_dedup=False``
      merges each rank's columns into one retained set, over-approximating
      the required blocks);
    * the exact packed-segment volume — the bytes of exactly the value
      segments the rank's shard gathers reference, shipped once each.  At
      block granularity this coincides with exact whole-block
      deduplication (every required block is fully referenced), so the
      interesting comparisons are against the two approximations above.
    """
    system = water_box(3)
    pattern, blocks = build_block_pattern(system, eps_filter=EPS_FILTER)
    n_ranks = 80
    context = SubmatrixContext(EngineConfig(engine="batched"))
    pipeline = context.pipeline(pattern, blocks.block_sizes, n_ranks)
    plan = pipeline.transfer_plan
    fast_context = SubmatrixContext(
        EngineConfig(engine="batched", exact_transfers=False),
        plan_cache=context.plan_cache,
    )
    fast = fast_context.pipeline(pattern, blocks.block_sizes, n_ranks).transfer_plan
    print(
        f"transfer planning ({system.n_molecules} molecules, {n_ranks} ranks, "
        f"balance={pipeline.balance!r}):"
    )
    segment_total = plan.total_segment_fetch_bytes
    print(
        f"  packed-segment fetch (exact, dedup) : {segment_total / 1e6:10.1f} MB"
    )
    print(
        f"  whole blocks, per submatrix         : "
        f"{plan.total_fetch_bytes_without_dedup / 1e6:10.1f} MB  "
        f"(dedup saves {plan.deduplication_savings:.1%})"
    )
    print(
        f"  whole blocks, fast pattern estimate : "
        f"{fast.total_fetch_bytes / 1e6:10.1f} MB  "
        f"(segments tighten by "
        f"{1.0 - segment_total / fast.total_fetch_bytes:.1%})"
    )
    print(
        f"  write-back volume                   : "
        f"{plan.total_writeback_bytes / 1e6:10.1f} MB"
    )
    segment = np.array([s.segment_fetch_bytes for s in plan.per_rank])
    blocks_nodedup = np.array(
        [s.fetch_bytes_without_dedup for s in plan.per_rank]
    )
    print("  per-rank fetch volume (sampled every 16th rank):")
    print("    rank   segments [MB]   blocks w/o dedup [MB]")
    for rank in range(0, n_ranks, 16):
        print(
            f"    {rank:>4d} {segment[rank] / 1e6:12.1f} "
            f"{blocks_nodedup[rank] / 1e6:17.1f}"
        )
    print(
        f"    max  {segment.max() / 1e6:12.1f} {blocks_nodedup.max() / 1e6:17.1f}\n"
    )


def sharded_execution_check() -> None:
    """The distributed session reproduces the single-process engine bitwise."""
    system = water_box(1)
    pair = build_matrices(system)
    k_ortho, _ = orthogonalized_ks(pair.K, pair.S, eps_filter=EPS_FILTER)
    blocked = block_matrix_from_csr(k_ortho, pair.blocks.block_sizes, threshold=0.0)
    mu = 0.0
    coo = CooBlockList.from_block_matrix(blocked)
    context = SubmatrixContext(EngineConfig(engine="batched"))
    result = context.distributed(8).run(blocked, "eigen", coo=coo, mu=mu)
    single = context.apply(blocked, "eigen", coo=coo, mu=mu)
    difference = np.max(
        np.abs(
            block_matrix_to_dense(result.result)
            - block_matrix_to_dense(single.result)
        )
    )
    print(
        f"sharded execution ({system.n_molecules} molecules on 8 ranks): "
        f"max |pipeline - single-process| = {difference:.1e} "
        f"({'bitwise identical' if difference == 0.0 else 'MISMATCH'})"
    )
    print(
        f"  per-rank stacks: {[r.n_stacks for r in result.per_rank]}, "
        f"segment fetch {result.total_segment_fetch_bytes / 1e6:.2f} MB\n"
    )


def overlapped_exchange() -> None:
    """Arrival-driven execution hides the exchange behind early buckets.

    The synchronous pipeline gathers a rank's full packed buffer before the
    first eigendecomposition; with ``overlap=True`` each bucket starts the
    moment its segment chunks land, so the modeled exchange time of the
    later buckets disappears behind the compute of the earlier ones.  The
    filter is chosen strong enough that the pattern is genuinely sparse —
    with near-dense submatrices every segment gates the first bucket and
    there is nothing to hide.
    """
    system = water_box(2)
    pair = build_matrices(system)
    prepared = prepare_step(pair.K, pair.S, pair.blocks, 2e-3)
    print(
        f"overlapped initialization exchange ({system.n_molecules} molecules, "
        f"{int(sum(prepared.block_sizes))} basis functions):"
    )
    for ranks in (2, 4, 8):
        pipeline = DistributedSubmatrixPipeline(
            prepared.coo, list(prepared.block_sizes), ranks
        )
        result = pipeline.run(
            prepared.block_k, batch_function=lambda stack: stack, overlap=True
        )
        overlap = result.overlap
        print(
            f"  {ranks:>2d} ranks: exchange {overlap.max_exchange_seconds:7.4f} s, "
            f"compute {overlap.max_compute_seconds:7.4f} s -> "
            f"{overlap.exchange_hidden_fraction:5.1%} of the exchange hidden "
            f"({overlap.overlap_seconds:.4f} s)"
        )
    print()


def strong_scaling(machine: MachineModel) -> None:
    system = water_box(3)
    pattern, blocks = build_block_pattern(system, eps_filter=EPS_FILTER)
    ranks = [80, 160, 240, 320]
    times = [
        submatrix_method_cost(pattern, blocks.block_sizes, r, machine).simulated.total
        for r in ranks
    ]
    efficiency = parallel_efficiency(times, ranks, mode="strong")
    print(f"strong scaling of the submatrix method ({system.n_atoms} atoms):")
    for r, t, e in zip(ranks, times, efficiency):
        print(f"  {r:>4d} cores: {t:8.3f} s   efficiency {e:5.1%}")
    print()


def weak_scaling(machine: MachineModel) -> None:
    scales = [1, 2, 4, 8]
    base_ranks = 40
    iterations = estimate_newton_schulz_iterations(EPS_FILTER)
    submatrix_times, newton_times, cores = [], [], []
    print("weak scaling (slab replicated along one dimension):")
    for scale in scales:
        system = water_box((3 * scale, 1, 1))
        pattern, blocks = build_block_pattern(system, eps_filter=EPS_FILTER)
        ranks = base_ranks * scale
        sm = submatrix_method_cost(pattern, blocks.block_sizes, ranks, machine)
        ns = newton_schulz_cost(
            pattern, blocks.block_sizes, ranks, machine, n_iterations=iterations
        )
        submatrix_times.append(sm.simulated.total)
        newton_times.append(ns.simulated.total)
        cores.append(ranks)
        print(
            f"  {system.n_atoms:>6d} atoms on {ranks:>4d} cores: "
            f"submatrix {sm.simulated.total:7.3f} s   "
            f"newton-schulz {ns.simulated.total:7.3f} s"
        )
    sm_eff = parallel_efficiency(submatrix_times, cores, mode="weak")
    ns_eff = parallel_efficiency(newton_times, cores, mode="weak")
    print(
        f"  weak-scaling efficiency at the largest scale: "
        f"submatrix {sm_eff[-1]:5.1%} vs. newton-schulz {ns_eff[-1]:5.1%}"
    )


def main() -> None:
    machine = MachineModel()
    print(f"machine model: {machine.name}\n")
    segment_transfer_planning()
    sharded_execution_check()
    overlapped_exchange()
    strong_scaling(machine)
    weak_scaling(machine)


if __name__ == "__main__":
    main()
